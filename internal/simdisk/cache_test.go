package simdisk

import (
	"math/rand"
	"testing"
)

func k(f, p int) pageKey { return pageKey{FileID(f), int64(p)} }

func TestLRUInsertContains(t *testing.T) {
	c := newLRUCache(2)
	c.Insert(k(1, 0))
	c.Insert(k(1, 1))
	if !c.Contains(k(1, 0)) || !c.Contains(k(1, 1)) {
		t.Fatal("inserted keys missing")
	}
	if c.Contains(k(1, 2)) {
		t.Fatal("phantom key present")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	c.Insert(k(1, 0))
	c.Insert(k(1, 1))
	c.Insert(k(1, 2)) // evicts 0
	if c.Contains(k(1, 0)) {
		t.Fatal("LRU victim still present")
	}
	// Touch 1 so 2 becomes LRU.
	if !c.Contains(k(1, 1)) {
		t.Fatal("key 1 missing")
	}
	c.Insert(k(1, 3)) // evicts 2
	if c.Contains(k(1, 2)) {
		t.Fatal("key 2 should have been evicted")
	}
	if !c.Contains(k(1, 1)) || !c.Contains(k(1, 3)) {
		t.Fatal("wrong survivors")
	}
}

func TestLRUReinsertMovesToFront(t *testing.T) {
	c := newLRUCache(2)
	c.Insert(k(1, 0))
	c.Insert(k(1, 1))
	c.Insert(k(1, 0)) // refresh 0; 1 is now LRU
	c.Insert(k(1, 2)) // evicts 1
	if c.Contains(k(1, 1)) {
		t.Fatal("key 1 should have been evicted")
	}
	if !c.Contains(k(1, 0)) {
		t.Fatal("refreshed key evicted")
	}
}

func TestLRURemoveAndRemoveFile(t *testing.T) {
	c := newLRUCache(10)
	c.Insert(k(1, 0))
	c.Insert(k(1, 1))
	c.Insert(k(2, 0))
	c.Remove(k(1, 0))
	if c.Contains(k(1, 0)) {
		t.Fatal("removed key present")
	}
	c.RemoveFile(FileID(1))
	if c.Contains(k(1, 1)) {
		t.Fatal("file pages not removed")
	}
	if !c.Contains(k(2, 0)) {
		t.Fatal("unrelated file page removed")
	}
	c.Remove(k(9, 9)) // no-op must not panic
}

func TestLRUZeroCapacityDisables(t *testing.T) {
	c := newLRUCache(0)
	c.Insert(k(1, 0))
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored a key")
	}
}

func TestLRUClear(t *testing.T) {
	c := newLRUCache(4)
	for i := 0; i < 4; i++ {
		c.Insert(k(1, i))
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	// Cache still usable after clear.
	c.Insert(k(1, 0))
	if !c.Contains(k(1, 0)) {
		t.Fatal("insert after clear failed")
	}
}

// Property: cache never exceeds capacity and the most recently inserted key
// is always present (capacity >= 1).
func TestLRUCapacityInvariantProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cap := 1 + r.Intn(8)
		c := newLRUCache(cap)
		for op := 0; op < 500; op++ {
			key := k(r.Intn(3), r.Intn(20))
			switch r.Intn(4) {
			case 0, 1:
				c.Insert(key)
				if !c.Contains(key) {
					t.Fatalf("just-inserted key absent (cap=%d)", cap)
				}
			case 2:
				c.Contains(key)
			case 3:
				c.Remove(key)
			}
			if c.Len() > cap {
				t.Fatalf("cache size %d exceeds capacity %d", c.Len(), cap)
			}
		}
	}
}

// Property: the linked list and the map stay consistent — walking the list
// from head visits exactly the mapped entries.
func TestLRUListMapConsistencyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := newLRUCache(6)
	for op := 0; op < 2000; op++ {
		key := k(r.Intn(2), r.Intn(12))
		switch r.Intn(3) {
		case 0:
			c.Insert(key)
		case 1:
			c.Contains(key)
		case 2:
			c.Remove(key)
		}
		seen := 0
		for n := c.head; n != nil; n = n.next {
			if _, ok := c.entries[n.key]; !ok {
				t.Fatal("list node missing from map")
			}
			seen++
			if seen > len(c.entries) {
				t.Fatal("list longer than map (cycle?)")
			}
		}
		if seen != len(c.entries) {
			t.Fatalf("list has %d nodes, map has %d", seen, len(c.entries))
		}
	}
}
