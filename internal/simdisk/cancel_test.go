package simdisk

import (
	"context"
	"errors"
	"testing"
	"time"
)

// cancelTestDevice builds a cacheless device (every read is a platter
// access with a known charge) holding one file of the given page count.
// After the appends the platter head sits at the file's last page, so the
// first read of page 0 pays a seek and subsequent pages are sequential.
func cancelTestDevice(t *testing.T, pages int64) (*Device, FileID, CostModel) {
	t.Helper()
	cost := CostModel{Seek: time.Millisecond, Transfer: 100 * time.Microsecond, CacheHit: time.Microsecond}
	d := NewDevice(cost, 0)
	id := d.CreateFile("cancel-test")
	page := make([]byte, PageSize)
	for i := int64(0); i < pages; i++ {
		if _, err := d.AppendPage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	return d, id, cost
}

// wantCanceled asserts err wraps both the device sentinel and the given
// context cause.
func wantCanceled(t *testing.T, err, cause error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("error %v does not wrap context cause %v", err, cause)
	}
}

// TestCancelPreCanceledChargesZeroClock: an operation under an already-dead
// context must abort before charging anything — zero clock movement, zero
// platter reads, one canceled op per aborted operation.
func TestCancelPreCanceledChargesZeroClock(t *testing.T) {
	d, id, _ := cancelTestDevice(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	clock0 := d.Clock()
	st0 := d.Stats()
	buf := make([]byte, PageSize)
	wantCanceled(t, d.ReadPageCtx(ctx, id, 0, buf), context.Canceled)
	_, err := d.ReadRunCtx(ctx, id, 0, 8)
	wantCanceled(t, err, context.Canceled)

	if got := d.Clock(); got != clock0 {
		t.Errorf("pre-canceled ops moved the clock by %v", got-clock0)
	}
	st := d.Stats()
	if st.PageReads != st0.PageReads {
		t.Errorf("pre-canceled ops performed %d platter reads", st.PageReads-st0.PageReads)
	}
	if got, want := st.CanceledOps-st0.CanceledOps, int64(2); got != want {
		t.Errorf("CanceledOps delta = %d, want %d", got, want)
	}
}

// TestCancelMidRunStopsAtPageBoundary: a context that expires mid-ReadRun
// (deterministically, via the simulated-clock limit) stops charging at the
// exact page boundary where the abort was observed — the pages already read
// stay charged, nothing after them is.
func TestCancelMidRunStopsAtPageBoundary(t *testing.T) {
	d, id, cost := cancelTestDevice(t, 8)
	clock0 := d.Clock()
	st0 := d.Stats()

	// Page 0 pays Seek+Transfer (head parked at EOF after the appends),
	// pages 1.. pay Transfer each. The limit lands exactly at the clock
	// value after 3 pages, so the gate before page 3 observes expiry.
	limit := clock0 + cost.Seek + 3*cost.Transfer
	ctx := WithClockLimit(context.Background(), d, limit)
	_, err := d.ReadRunCtx(ctx, id, 0, 8)
	wantCanceled(t, err, context.DeadlineExceeded)

	if got, want := d.Clock()-clock0, cost.Seek+3*cost.Transfer; got != want {
		t.Errorf("clock delta = %v, want exactly %v (3 pages then abort)", got, want)
	}
	st := d.Stats()
	if got, want := st.PageReads-st0.PageReads, int64(3); got != want {
		t.Errorf("platter reads = %d, want %d", got, want)
	}
	if got, want := st.CanceledOps-st0.CanceledOps, int64(1); got != want {
		t.Errorf("CanceledOps delta = %d, want %d", got, want)
	}

	// The device is not poisoned: the same run under a live context
	// completes and charges the remaining pages.
	if _, err := d.ReadRunCtx(context.Background(), id, 0, 8); err != nil {
		t.Fatalf("post-cancel read failed: %v", err)
	}
	if got, want := d.Stats().PageReads-st0.PageReads, int64(11); got != want {
		t.Errorf("total platter reads = %d, want %d", got, want)
	}
}

// TestCancelClockLimitExactBoundary: a run whose total cost lands exactly on
// the limit completes — expiry is checked before a charge, never applied
// retroactively to work already done.
func TestCancelClockLimitExactBoundary(t *testing.T) {
	d, id, cost := cancelTestDevice(t, 4)
	clock0 := d.Clock()
	limit := clock0 + cost.Seek + 4*cost.Transfer
	ctx := WithClockLimit(context.Background(), d, limit)
	if _, err := d.ReadRunCtx(ctx, id, 0, 4); err != nil {
		t.Fatalf("run costing exactly the limit should complete, got %v", err)
	}
	if got, want := d.Clock()-clock0, cost.Seek+4*cost.Transfer; got != want {
		t.Errorf("clock delta = %v, want %v", got, want)
	}
	// The next operation observes the exhausted budget before charging.
	buf := make([]byte, PageSize)
	wantCanceled(t, d.ReadPageCtx(ctx, id, 0, buf), context.DeadlineExceeded)
	if got, want := d.Clock()-clock0, cost.Seek+4*cost.Transfer; got != want {
		t.Errorf("post-expiry op moved the clock to delta %v", got)
	}
}

// TestCancelAbortsRealTimeEmulationWait: with real-time emulation on, a
// wall-clock deadline interrupts the scaled sleep instead of serving it out
// — an abandoned query stops occupying its worker almost immediately.
func TestCancelAbortsRealTimeEmulationWait(t *testing.T) {
	cost := CostModel{Seek: time.Second, Transfer: 250 * time.Millisecond, CacheHit: time.Microsecond}
	d := NewDevice(cost, 0)
	id := d.CreateFile("rt")
	page := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		if _, err := d.AppendPage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	d.SetRealTimeScale(1.0)
	st0 := d.Stats()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.ReadRunCtx(ctx, id, 0, 4) // 2s of simulated I/O, slept once
	elapsed := time.Since(start)
	wantCanceled(t, err, context.DeadlineExceeded)
	if elapsed >= time.Second {
		t.Errorf("emulation wait ran %v despite a 50ms deadline", elapsed)
	}
	if got := d.Stats().CanceledOps - st0.CanceledOps; got != 1 {
		t.Errorf("CanceledOps delta = %d, want 1", got)
	}
}
