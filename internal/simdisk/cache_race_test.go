package simdisk

import (
	"sync"
	"testing"
)

// TestShardedCacheSetCapacityRace hammers Touch/Insert/RemoveFile from many
// goroutines while SetCapacity repeatedly resizes across shard-count
// boundaries (rebuilding the shard array) and within one (in-place
// resizes). Run under -race this pins the shards-slice RWMutex discipline;
// the invariant checks pin that no resize loses track of capacity.
func TestShardedCacheSetCapacityRace(t *testing.T) {
	c := newShardedCache(1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := pageKey{FileID(1 + (g+i)%5), int64(i % 512)}
				switch i % 3 {
				case 0:
					c.Touch(key)
				case 1:
					c.Insert(key)
				default:
					if i%31 == 0 {
						c.RemoveFile(key.file)
					} else {
						c.Touch(key)
					}
				}
				i++
			}
		}()
	}

	// Resize across the whole regime: single-shard small caches, in-place
	// resizes, and shard-array rebuilds with key migration. Len() after each
	// resize exercises the read side of the shards lock mid-rebuild.
	sizes := []int{64, 4096, 1024, 0, 256, 8192, 128, 2048}
	for round := 0; round < 40; round++ {
		c.SetCapacity(sizes[round%len(sizes)])
		_ = c.Len()
	}
	close(stop)
	wg.Wait()

	// The cache still functions after the storm: a fresh key misses then
	// hits.
	c.SetCapacity(128)
	key := pageKey{FileID(99), 1}
	if c.Touch(key) {
		t.Fatal("fresh key reported cached")
	}
	if !c.Touch(key) {
		t.Fatal("just-inserted key not cached")
	}
}
