package simdisk

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// Priority classifies a device operation for QoS purposes. It rides on the
// operation's context inside an OpScope: the dispatcher tags deadline-
// imminent queries PriUrgent, the maintenance scheduler tags its background
// I/O PriMaintenance, and everything else defaults to PriForeground.
type Priority uint8

const (
	// PriForeground is the default class: interactive query I/O. It queues
	// behind earlier operations on the same channel and is charged the
	// arrival-gated queueing delay it actually waits.
	PriForeground Priority = iota
	// PriMaintenance marks background layout maintenance (refinement and
	// merge I/O). It queues like foreground work, but when a maintenance
	// I/O budget is set (SetMaintenanceBudget) its platter operations
	// additionally wait — in wall-clock time only, never on the simulated
	// clock — while foreground operations are in flight and maintenance
	// exceeds its busy-time share.
	PriMaintenance
	// PriUrgent marks deadline-imminent queries. Urgent operations jump the
	// per-channel queue: they are never charged queueing delay (and never
	// sleep it under real-time emulation), though their service time still
	// occupies the channel like any other access.
	PriUrgent
)

// String names the priority for reports.
func (p Priority) String() string {
	switch p {
	case PriMaintenance:
		return "maintenance"
	case PriUrgent:
		return "urgent"
	default:
		return "foreground"
	}
}

// OpScope accumulates the exact simulated cost of one logical unit of work
// (one query, one maintenance task) across every device operation its
// context performs. The arrival-aware channel model makes the attribution
// exact on any topology: every platter charge lands on at most one scope,
// so the per-scope Charged() durations of concurrent queries sum to the
// total device busy time (nothing double-counted, nothing lost), and
// Queued() is precisely the arrival-gated delay this scope's operations
// spent waiting behind earlier operations on their channels.
//
// A scope carries a virtual arrival frontier: its first platter access
// arrives exactly when its channel can serve it (no delay — the scope
// enters the simulated timeline there), and every subsequent operation
// arrives where the previous one completed, so a scope that hops onto a
// channel another scope has pushed ahead is charged the wait, exactly as a
// request queueing behind a busy head would be.
type OpScope struct {
	pri Priority

	// now is the scope's virtual timeline position in simulated nanoseconds
	// (same epoch as the channel busy clocks): the arrival time of its next
	// operation. -1 until the first operation positions the scope.
	now atomic.Int64

	charged atomic.Int64 // platter service time (seek + transfer)
	shared  atomic.Int64 // cache-hit (and other shared-clock) time
	queued  atomic.Int64 // arrival-gated queueing delay
}

// NewOpScope creates an unattached scope of the given priority. Most
// callers want WithOpScope, which also attaches it to a context.
func NewOpScope(pri Priority) *OpScope {
	s := &OpScope{pri: pri}
	s.now.Store(-1)
	return s
}

// opScopeKey keys the scope in a context.
type opScopeKey struct{}

// WithOpScope attaches a fresh OpScope of the given priority to ctx (nil
// allowed) and returns both. Device operations performed with the returned
// context are attributed to the scope.
func WithOpScope(ctx context.Context, pri Priority) (context.Context, *OpScope) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := NewOpScope(pri)
	return context.WithValue(ctx, opScopeKey{}, s), s
}

// ScopeFrom returns the OpScope attached to ctx, or nil.
func ScopeFrom(ctx context.Context) *OpScope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(opScopeKey{}).(*OpScope)
	return s
}

// Priority returns the scope's QoS class.
func (s *OpScope) Priority() Priority { return s.pri }

// Charged returns the platter service time (seeks + transfers) attributed
// to this scope. Concurrent scopes' Charged durations sum exactly to the
// device's total busy time.
func (s *OpScope) Charged() time.Duration { return time.Duration(s.charged.Load()) }

// Shared returns the shared-clock time (cache hits) attributed to this
// scope.
func (s *OpScope) Shared() time.Duration { return time.Duration(s.shared.Load()) }

// Queued returns the arrival-gated queueing delay this scope's operations
// waited behind earlier operations on their channels. Always zero for
// PriUrgent scopes and on single-stream serial workloads.
func (s *OpScope) Queued() time.Duration { return time.Duration(s.queued.Load()) }

// Total returns the scope's complete simulated latency: service time plus
// shared time plus queueing delay. On a serial single-channel workload this
// is bit-for-bit the clock delta of the original single-head model.
func (s *OpScope) Total() time.Duration {
	return time.Duration(s.charged.Load() + s.shared.Load() + s.queued.Load())
}

// noteShared attributes a shared-clock charge (cache hit) to the scope and
// advances its virtual timeline by it. Safe on a nil scope (unattributed
// operation): a no-op.
func (s *OpScope) noteShared(dt time.Duration) {
	if s == nil {
		return
	}
	s.shared.Add(int64(dt))
	for {
		old := s.now.Load()
		if old < 0 {
			return // not yet positioned; the first platter access positions it
		}
		if s.now.CompareAndSwap(old, old+int64(dt)) {
			return
		}
	}
}

// PhaseClock returns the clock phase attribution differences: the scope's
// exact Total when ctx carries one, the device clock otherwise (the
// single-stream fallback, exact on C=1 D=1). Callers take a reading before
// and after a phase and record the difference.
func PhaseClock(ctx context.Context, dev Clocker) func() time.Duration {
	if s := ScopeFrom(ctx); s != nil {
		return s.Total
	}
	return dev.Clock
}

// SetMaintenanceBudget sets the background I/O budget: the maximum fraction
// of platter busy time maintenance operations may consume while foreground
// operations are in flight. With a budget in (0, 1), a PriMaintenance
// platter operation whose class is over its share waits — in wall-clock
// time only — until the foreground goes idle or the share drops. frac <= 0
// (the default) or >= 1 disables throttling. The simulated clock, charges
// and results are identical either way; only wall-clock scheduling changes.
func (d *Device) SetMaintenanceBudget(frac float64) {
	if frac <= 0 || math.IsNaN(frac) {
		d.maintBudget.Store(0)
		return
	}
	d.maintBudget.Store(math.Float64bits(frac))
}

// MaintenanceBudget returns the current background I/O budget (0 = off).
func (d *Device) MaintenanceBudget() float64 {
	bits := d.maintBudget.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// SetMaintenanceBudget fans the background I/O budget out to every member;
// throttling is per member, matching the per-member foreground in-flight
// accounting.
func (a *DeviceArray) SetMaintenanceBudget(frac float64) {
	for _, m := range a.members {
		m.SetMaintenanceBudget(frac)
	}
}

// MaintenanceBudget returns the members' common budget.
func (a *DeviceArray) MaintenanceBudget() float64 { return a.members[0].MaintenanceBudget() }

// gateOp is the QoS entry gate every page I/O operation passes: foreground
// and urgent scoped operations register as in flight — the signal the
// maintenance throttle watches. Maintenance operations pass freely: the
// budget wait happens at task boundaries (AwaitMaintenanceTurn), never
// mid-operation, because a maintenance step may be holding an engine lock
// (a tree's write lock during refinement) and pausing it there would block
// the very foreground queries the budget protects. The matching ungateOp
// must be called when the operation (including its real-time emulation
// sleep) finishes.
func (d *Device) gateOp(ctx context.Context, s *OpScope) error {
	if s == nil || s.pri == PriMaintenance {
		return nil
	}
	d.fgInFlight.Add(1)
	return nil
}

// ungateOp undoes gateOp's in-flight registration.
func (d *Device) ungateOp(s *OpScope) {
	if s != nil && s.pri != PriMaintenance {
		d.fgInFlight.Add(-1)
	}
}

// AwaitMaintenanceTurn blocks — wall-clock only — until background
// maintenance is within its I/O budget or the foreground goes idle (see
// SetMaintenanceBudget). Maintenance schedulers call it at task boundaries,
// BEFORE acquiring engine locks: the wait must happen at a lock-free point,
// or throttling would extend lock holds and invert priorities. Returns a
// cancellation error when ctx dies mid-wait; immediate when no budget is
// set.
func (d *Device) AwaitMaintenanceTurn(ctx context.Context) error {
	return d.throttleMaintenance(ctx)
}

// AwaitMaintenanceTurn waits for every member's turn: a maintenance task
// may touch files on any member, so it proceeds when all members are
// within budget (each member's wait is independent and self-limiting — a
// gated class stops accruing busy time, so its share only falls).
func (a *DeviceArray) AwaitMaintenanceTurn(ctx context.Context) error {
	for _, m := range a.members {
		if err := m.AwaitMaintenanceTurn(ctx); err != nil {
			return err
		}
	}
	return nil
}

// throttleMaintenance blocks — wall-clock only — while foreground
// operations are in flight and maintenance platter time exceeds its
// budgeted share. The wait never touches the simulated clock, so results
// and charges are byte-identical with throttling on or off; it only
// reorders wall-clock execution so background I/O yields the device to
// interactive queries.
func (d *Device) throttleMaintenance(ctx context.Context) error {
	bits := d.maintBudget.Load()
	if bits == 0 {
		return nil
	}
	frac := math.Float64frombits(bits)
	if frac >= 1 {
		return nil
	}
	waited := false
	for d.fgInFlight.Load() > 0 && !d.closed.Load() {
		mb, fb := d.maintBusy.Load(), d.fgBusy.Load()
		if float64(mb) <= frac*float64(mb+fb) {
			break // within budget: proceed even under foreground load
		}
		if err := d.checkCtx(ctx); err != nil {
			return err
		}
		if !waited {
			waited = true
			d.throttledOps.Add(1)
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}
