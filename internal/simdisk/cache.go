package simdisk

// pageKey identifies one page on the device.
type pageKey struct {
	file FileID
	page int64
}

// lruCache is a fixed-capacity LRU set of page keys emulating the OS page
// cache. It stores only presence, not data — the device keeps page contents
// in its file map; the cache decides whether a read pays disk cost or the
// (near-free) cache-hit cost.
type lruCache struct {
	capacity int // in pages; <= 0 disables caching
	entries  map[pageKey]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	key        pageKey
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, entries: make(map[pageKey]*lruNode)}
}

// Contains reports whether key is cached and, if so, marks it most recently
// used.
func (c *lruCache) Contains(key pageKey) bool {
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.moveToFront(n)
	return true
}

// Insert adds key as the most recently used entry, evicting the least
// recently used entry if the cache is full.
func (c *lruCache) Insert(key pageKey) {
	if c.capacity <= 0 {
		return
	}
	if n, ok := c.entries[key]; ok {
		c.moveToFront(n)
		return
	}
	n := &lruNode{key: key}
	c.entries[key] = n
	c.pushFront(n)
	for len(c.entries) > c.capacity {
		c.evictTail()
	}
}

// Remove drops key from the cache if present.
func (c *lruCache) Remove(key pageKey) {
	if n, ok := c.entries[key]; ok {
		c.unlink(n)
		delete(c.entries, key)
	}
}

// RemoveFile drops every cached page belonging to file f.
func (c *lruCache) RemoveFile(f FileID) {
	for key := range c.entries {
		if key.file == f {
			c.Remove(key)
		}
	}
}

// Clear empties the cache (the paper's cache-drop before each query).
func (c *lruCache) Clear() {
	c.entries = make(map[pageKey]*lruNode)
	c.head, c.tail = nil, nil
}

// Len returns the number of cached pages.
func (c *lruCache) Len() int { return len(c.entries) }

// SetCapacity changes the capacity, evicting LRU entries if shrinking.
func (c *lruCache) SetCapacity(capacity int) {
	c.capacity = capacity
	if capacity <= 0 {
		c.Clear()
		return
	}
	for len(c.entries) > capacity {
		c.evictTail()
	}
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache) evictTail() {
	if c.tail == nil {
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.entries, victim.key)
}
