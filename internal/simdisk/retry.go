package simdisk

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy bounds how hard the device's page-read path works to survive
// transient faults. Retries are wall-clock only: a faulted read attempt was
// rejected before any cache touch or platter charge, so the simulated clock
// and every OpScope see exactly the I/O that actually happened — the one
// successful read, or nothing. Only transient faults (errors.Is(err,
// ErrTransient)) are retried; permanent faults, cancellations and structural
// errors fail fast. The zero policy disables retrying entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts per page, including
	// the first. Values <= 1 disable retrying.
	MaxAttempts int
	// Backoff is the wall-clock sleep before the first retry, doubling on
	// each subsequent one. Zero retries immediately.
	Backoff time.Duration
	// Budget caps the cumulative backoff slept per page read; once the next
	// sleep would exceed it the read fails with the last fault (ledgered in
	// Stats.RetryExhausted). Zero means no cap.
	Budget time.Duration
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// SetRetryPolicy installs the device's page-read retry policy. Safe to call
// concurrently with reads; in-flight reads may finish under the old policy.
func (d *Device) SetRetryPolicy(p RetryPolicy) {
	d.retry.Store(&p)
}

// RetryPolicy returns the current page-read retry policy.
func (d *Device) RetryPolicy() RetryPolicy {
	if p := d.retry.Load(); p != nil {
		return *p
	}
	return RetryPolicy{}
}

// SetRetryPolicy fans the policy out to every member.
func (a *DeviceArray) SetRetryPolicy(p RetryPolicy) {
	for _, m := range a.members {
		m.SetRetryPolicy(p)
	}
}

// RetryPolicy returns the members' common retry policy.
func (a *DeviceArray) RetryPolicy() RetryPolicy { return a.members[0].RetryPolicy() }

// readPageRetry is readPage wrapped in the retry policy: transient faults
// are retried with exponential wall-clock backoff until they clear, attempts
// run out, or the backoff budget is exhausted. Every retry attempt is
// counted in Stats.RetriedOps; a read that still fails after its last
// attempt (or that the budget cuts off) counts once in Stats.RetryExhausted.
// Backoff sleeps abort on ctx cancellation, returning an error that matches
// both ErrCanceled and the fault being retried.
func (d *Device) readPageRetry(ctx context.Context, id FileID, idx int64, buf []byte) (time.Duration, error) {
	dt, err := d.readPage(ctx, id, idx, buf)
	if err == nil || !errors.Is(err, ErrTransient) {
		return dt, err
	}
	p := d.RetryPolicy()
	if !p.enabled() {
		return 0, err
	}
	backoff := p.Backoff
	var slept time.Duration
	for attempt := 2; attempt <= p.MaxAttempts; attempt++ {
		if backoff > 0 {
			if p.Budget > 0 && slept+backoff > p.Budget {
				d.retryExhausted.Add(1)
				return 0, fmt.Errorf("simdisk: retry budget %v exhausted after %d attempts: %w", p.Budget, attempt-1, err)
			}
			if serr := d.sleepBackoff(ctx, backoff); serr != nil {
				return 0, fmt.Errorf("%w (while backing off from %w)", serr, err)
			}
			slept += backoff
			backoff *= 2
		}
		d.retriedOps.Add(1)
		dt, err = d.readPage(ctx, id, idx, buf)
		if err == nil || !errors.Is(err, ErrTransient) {
			return dt, err
		}
	}
	d.retryExhausted.Add(1)
	return 0, fmt.Errorf("simdisk: %d read attempts failed: %w", p.MaxAttempts, err)
}

// sleepBackoff waits a retry backoff in wall-clock time, aborting early when
// ctx is canceled (counted as a canceled op, like any device-side abort).
func (d *Device) sleepBackoff(ctx context.Context, dt time.Duration) error {
	if ctx == nil {
		time.Sleep(dt)
		return nil
	}
	timer := time.NewTimer(dt)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		d.canceledOps.Add(1)
		return Canceled(ctx.Err())
	}
}
