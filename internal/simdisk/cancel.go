package simdisk

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCanceled is the sentinel every cancellation failure on the device
// wraps. Errors returned for an expired or canceled context satisfy both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()) — callers can
// match on the device-level sentinel or on context.Canceled /
// context.DeadlineExceeded interchangeably.
var ErrCanceled = errors.New("simdisk: operation canceled")

// cancelErr couples ErrCanceled with the context cause that triggered it.
type cancelErr struct{ cause error }

func (e *cancelErr) Error() string { return "simdisk: operation canceled: " + e.cause.Error() }

func (e *cancelErr) Is(target error) bool { return target == ErrCanceled }

func (e *cancelErr) Unwrap() error { return e.cause }

// Canceled wraps a context cause into the device's cancellation error. A nil
// cause defaults to context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &cancelErr{cause: cause}
}

// CheckCtx returns nil when ctx is nil or still live, and the wrapped
// cancellation error otherwise. Layers above the device use it to check
// cancellation between their own steps (tree leaves, merge segments) with
// the same error shape the device produces. It never touches the device
// counters — only operations the device itself aborts count as canceled ops.
func CheckCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return Canceled(err)
	}
	return nil
}

// checkCtx is the device-side cancellation gate: like CheckCtx, but a hit
// also counts one canceled operation in the device stats.
func (d *Device) checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		d.canceledOps.Add(1)
		return Canceled(err)
	}
	return nil
}

// ReadPageCtx is ReadPage with cancellation: a context that is already done
// aborts before any clock charge, and the real-time emulation sleep (if any)
// aborts early on ctx.Done. A nil ctx behaves exactly like ReadPage.
func (d *Device) ReadPageCtx(ctx context.Context, id FileID, idx int64, buf []byte) error {
	s := ScopeFrom(ctx)
	if err := d.gateOp(ctx, s); err != nil {
		return err
	}
	defer d.ungateOp(s)
	dt, err := d.readPageRetry(ctx, id, idx, buf)
	if err != nil {
		return err
	}
	return d.emulateCtx(ctx, dt)
}

// ReadRunCtx is ReadRun with cancellation. The context is checked before
// every page, so an abort stops charging at the page boundary it was
// observed: pages already read stay charged to the simulated clock (that
// I/O really happened), pages after the abort are never charged. The
// aggregated real-time sleep is skipped on abort — the caller is abandoning
// the query, so emulating the latency of work it no longer waits for would
// only hold the worker hostage.
func (d *Device) ReadRunCtx(ctx context.Context, id FileID, start, n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("simdisk: negative run length %d", n)
	}
	s := ScopeFrom(ctx)
	if err := d.gateOp(ctx, s); err != nil {
		return nil, err
	}
	defer d.ungateOp(s)
	if n > 0 && d.shareReads.Load() {
		return d.readRunShared(ctx, id, start, n)
	}
	return d.readRunDirect(ctx, id, start, n)
}

// readRunDirect is the uncoalesced run read every ReadRun ultimately runs
// on: page-by-page charging with one aggregated real-time sleep at the end.
func (d *Device) readRunDirect(ctx context.Context, id FileID, start, n int64) ([]byte, error) {
	buf := make([]byte, n*PageSize)
	var total time.Duration
	for i := int64(0); i < n; i++ {
		dt, err := d.readPageRetry(ctx, id, start+i, buf[i*PageSize:(i+1)*PageSize])
		if err != nil {
			return nil, err
		}
		total += dt
	}
	if err := d.emulateCtx(ctx, total); err != nil {
		return nil, err
	}
	return buf, nil
}

// clockLimitCtx is a Context that reports itself expired once a Device's
// simulated clock reaches a limit. See WithClockLimit.
type clockLimitCtx struct {
	context.Context
	dev   Clocker
	limit time.Duration
}

// WithClockLimit derives a context that expires when dev's simulated clock
// reaches limit (an absolute clock value, not a delta). Expiry is observed
// by polling Err — which is exactly what the device's cancellation gates do
// between charges — so cancellation lands deterministically on a charge
// boundary regardless of wall-clock scheduling. This is the simulated-world
// analogue of context.WithDeadline and the tool the deterministic
// cancellation tests are built on.
//
// Limitations: Done still returns the parent's channel (the simulated clock
// has no goroutine watching it), so select-based waiters — including the
// device's real-time emulation sleeps — only observe the parent's
// cancellation, not the clock limit. For the same reason the limit does not
// survive derivation: a context derived from this one (context.WithCancel,
// WithTimeout — including a dispatcher-attached default deadline) consults
// only its own state and the parent's Done channel, never this Err
// override, so pass a clock-limited context directly to the query APIs
// rather than wrapping it further. Use real deadlines for wall-clock
// control; use WithClockLimit for deterministic simulated budgets.
func WithClockLimit(parent context.Context, dev Clocker, limit time.Duration) context.Context {
	if parent == nil {
		parent = context.Background()
	}
	return &clockLimitCtx{Context: parent, dev: dev, limit: limit}
}

func (c *clockLimitCtx) Err() error {
	if err := c.Context.Err(); err != nil {
		return err
	}
	if c.dev.Clock() >= c.limit {
		return context.DeadlineExceeded
	}
	return nil
}
