package simdisk

import (
	"context"
	"sync"
)

// PageStripe returns the placement policy that stripes every file
// page-granularly across ALL members of a DeviceArray instead of placing
// whole files on single members: pages are grouped into chunks of
// chunkPages consecutive pages and the chunks deal round-robin across the
// members, so one file's long sequential run fans out over every spindle
// and a run read proceeds on all of them concurrently. The trade is the
// classic RAID-0 one — aggregate bandwidth for a single hot file versus
// the per-member sequentiality (and seek avoidance) whole-file affinity
// preserves. chunkPages <= 0 defaults to 8.
//
// The policy is detected by the DeviceArray at construction: with it
// installed, every created file is striped (there is no per-file opt-in)
// and FileIDs come from a reserved namespace the array routes through its
// stripe table instead of the arithmetic member encoding.
func PageStripe(chunkPages int64) PlacementPolicy {
	if chunkPages <= 0 {
		chunkPages = 8
	}
	return pageStripe{chunk: chunkPages}
}

type pageStripe struct{ chunk int64 }

// Place is unused under striping — a striped file lives on every member —
// but must exist to satisfy PlacementPolicy.
func (pageStripe) Place(name, group string, devices int) int { return 0 }

func (pageStripe) String() string { return "pagestripe" }

// ChunkPages is the detection hook NewDeviceArray looks for.
func (p pageStripe) ChunkPages() int64 { return p.chunk }

// stripingPolicy marks a placement policy as page-striping; the chunk size
// is in pages.
type stripingPolicy interface{ ChunkPages() int64 }

// stripeTag is the high bit reserved for striped FileIDs. Member-encoded
// ids are allocated densely from zero (local*D + member), so the two
// namespaces cannot collide below a billion files — and under a striping
// policy every file is striped anyway, so the member encoding is never
// handed out at all.
const stripeTag FileID = 1 << 30

// stripedFile is one page-striped file: a member-local backing file per
// member, plus the append lock that keeps the logical end-of-file
// consistent (the logical length is the sum of the local lengths, so
// concurrent appends must serialize here, not per member).
type stripedFile struct {
	name   string
	locals []FileID // member-local backing file ids, index = member
	mu     sync.Mutex
}

// striped returns the stripe-table entry for id, or ok=false when id is
// not a striped file (no tag, no striping policy, or deleted).
func (a *DeviceArray) striped(id FileID) (*stripedFile, bool) {
	if id&stripeTag == 0 || a.chunk <= 0 {
		return nil, false
	}
	a.stripeMu.RLock()
	f := a.stripes[id]
	a.stripeMu.RUnlock()
	return f, f != nil
}

// stripeLoc maps a global page index to (member, member-local page index):
// chunk s = p/chunk lands on member s%D at local chunk s/D. Consecutive
// chunks of one member are consecutive locally, so any contiguous global
// range is at most one contiguous local range per member.
func (a *DeviceArray) stripeLoc(p int64) (int, int64) {
	c := a.chunk
	d := int64(len(a.members))
	s := p / c
	return int(s % d), (s/d)*c + p%c
}

// createStriped creates one backing file per member and registers the
// striped id. On a closed array it returns InvalidFile like CreateFile.
func (a *DeviceArray) createStriped(name string) FileID {
	f := &stripedFile{name: name, locals: make([]FileID, len(a.members))}
	for i, m := range a.members {
		local := m.CreateFile(name)
		if local == InvalidFile {
			return InvalidFile // closed; members close together
		}
		f.locals[i] = local
	}
	a.stripeMu.Lock()
	a.stripeSeq++
	id := stripeTag | FileID(a.stripeSeq)
	a.stripes[id] = f
	a.stripeMu.Unlock()
	return id
}

func (a *DeviceArray) deleteStriped(id FileID, f *stripedFile) error {
	a.stripeMu.Lock()
	delete(a.stripes, id)
	a.stripeMu.Unlock()
	var first error
	for i, m := range a.members {
		if err := m.DeleteFile(f.locals[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// stripedNumPages is the logical file length: the global-to-local mapping
// is a bijection that fills every member's backing file as a prefix, so
// the logical length is exactly the sum of the local lengths.
func (a *DeviceArray) stripedNumPages(f *stripedFile) (int64, error) {
	var total int64
	for i, m := range a.members {
		n, err := m.NumPages(f.locals[i])
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// stripedAppend appends one page at the logical end of file: the append
// lock pins the logical length, the chunk mapping names the member whose
// backing file the page extends, and the returned index is global.
func (a *DeviceArray) stripedAppend(ctx context.Context, f *stripedFile, data []byte) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end, err := a.stripedNumPages(f)
	if err != nil {
		return 0, err
	}
	m, _ := a.stripeLoc(end)
	if _, err := a.members[m].AppendPageCtx(ctx, f.locals[m], data); err != nil {
		return 0, err
	}
	return end, nil
}

// stripedReadRun reads a contiguous global page range by issuing each
// member's (single, contiguous) share of it concurrently and reassembling
// the chunks into global order — the bandwidth aggregation striping buys.
func (a *DeviceArray) stripedReadRun(ctx context.Context, f *stripedFile, start, n int64) ([]byte, error) {
	if n <= 0 {
		// Preserve the single-device contract for degenerate runs
		// (negative lengths error, zero-length runs are free no-ops).
		return a.members[0].ReadRunCtx(ctx, f.locals[0], 0, n)
	}
	c := a.chunk
	d := int64(len(a.members))
	end := start + n
	type sub struct {
		lo, hi int64 // member-local page range, hi exclusive
		active bool
	}
	subs := make([]sub, d)
	for s := start / c; s*c < end; s++ {
		gLo, gHi := s*c, (s+1)*c
		if gLo < start {
			gLo = start
		}
		if gHi > end {
			gHi = end
		}
		m := int(s % d)
		lLo := (s/d)*c + (gLo - s*c)
		if !subs[m].active {
			subs[m] = sub{lo: lLo, hi: lLo + (gHi - gLo), active: true}
		} else {
			subs[m].hi = lLo + (gHi - gLo)
		}
	}
	bufs := make([][]byte, d)
	errs := make([]error, d)
	var wg sync.WaitGroup
	for m := range subs {
		if !subs[m].active {
			continue
		}
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			bufs[m], errs[m] = a.members[m].ReadRunCtx(ctx, f.locals[m], subs[m].lo, subs[m].hi-subs[m].lo)
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]byte, n*PageSize)
	for s := start / c; s*c < end; s++ {
		gLo, gHi := s*c, (s+1)*c
		if gLo < start {
			gLo = start
		}
		if gHi > end {
			gHi = end
		}
		m := int(s % d)
		lLo := (s/d)*c + (gLo - s*c)
		off := (lLo - subs[m].lo) * PageSize
		copy(out[(gLo-start)*PageSize:(gHi-start)*PageSize], bufs[m][off:off+(gHi-gLo)*PageSize])
	}
	return out, nil
}
