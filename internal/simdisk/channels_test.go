package simdisk

import (
	"testing"
	"time"
)

// twoChannelFiles creates files on dev until it holds one file per channel
// of a 2-channel device, each with n pages, and returns them.
func twoChannelFiles(t *testing.T, d *Device, n int) (onCh0, onCh1 FileID) {
	t.Helper()
	have := map[*channel]FileID{}
	for i := 0; len(have) < 2 && i < 64; i++ {
		id := d.CreateFile("f")
		ch := d.channelOf(id)
		if _, ok := have[ch]; ok {
			if err := d.DeleteFile(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		have[ch] = id
		for p := 0; p < n; p++ {
			if _, err := d.AppendPage(id, page(byte(p))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(have) != 2 {
		t.Fatal("could not place one file on each of 2 channels")
	}
	onCh0 = have[&d.channels[0]]
	onCh1 = have[&d.channels[1]]
	return onCh0, onCh1
}

// TestChannelsIndependentHeads is the point of multi-channel devices:
// interleaved sequential scans of two files on different channels keep both
// runs sequential (one seek each), where a single head would seek on every
// access.
func TestChannelsIndependentHeads(t *testing.T) {
	d := NewDeviceChannels(DefaultCostModel(), 0, 2)
	a, b := twoChannelFiles(t, d, 4)
	d.ResetStats()
	buf := make([]byte, PageSize)
	for i := int64(0); i < 4; i++ { // interleave a and b page by page
		if err := d.ReadPage(a, i, buf); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadPage(b, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.Seeks != 2 || s.SeqPages != 6 {
		t.Fatalf("interleaved cross-channel scans: %d seeks, %d seq pages; want 2 and 6", s.Seeks, s.SeqPages)
	}

	// The same interleave on a single-channel device seeks every access.
	d1 := NewDevice(DefaultCostModel(), 0)
	a1 := d1.CreateFile("a")
	b1 := d1.CreateFile("b")
	for p := 0; p < 4; p++ {
		if _, err := d1.AppendPage(a1, page(byte(p))); err != nil {
			t.Fatal(err)
		}
		if _, err := d1.AppendPage(b1, page(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	d1.ResetStats()
	for i := int64(0); i < 4; i++ {
		if err := d1.ReadPage(a1, i, buf); err != nil {
			t.Fatal(err)
		}
		if err := d1.ReadPage(b1, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if s := d1.Stats(); s.Seeks != 8 {
		t.Fatalf("interleaved single-channel scans: %d seeks, want 8", s.Seeks)
	}
}

// TestChannelClockIsCriticalPath checks that Clock() on a multi-channel
// device reports the busiest channel plus shared time, not the sum.
func TestChannelClockIsCriticalPath(t *testing.T) {
	cost := CostModel{Seek: 10 * time.Millisecond, Transfer: time.Millisecond}
	d := NewDeviceChannels(cost, 0, 2)
	a, b := twoChannelFiles(t, d, 3)
	d.ResetClock()
	buf := make([]byte, PageSize)
	// One seek + 3 transfers on channel of a; one seek + 1 transfer on b's.
	for i := int64(0); i < 3; i++ {
		if err := d.ReadPage(a, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadPage(b, 0, buf); err != nil {
		t.Fatal(err)
	}
	want := cost.Seek + 3*cost.Transfer // critical path: channel of a
	if got := d.Clock(); got != want {
		t.Fatalf("Clock() = %v, want busiest channel %v", got, want)
	}
	cs := d.ChannelStats()
	if len(cs) != 2 {
		t.Fatalf("ChannelStats returned %d channels, want 2", len(cs))
	}
	var total time.Duration
	for _, c := range cs {
		total += c.Busy
	}
	if want := 2*cost.Seek + 4*cost.Transfer; total != want {
		t.Fatalf("summed channel busy = %v, want all charged platter time %v", total, want)
	}
}

// TestSingleChannelClockUnchanged pins the backwards-compatibility
// guarantee: with one channel, every charge — platter, cache hit, CPU —
// accumulates into one clock exactly as the original single-accumulator
// model did.
func TestSingleChannelClockUnchanged(t *testing.T) {
	cost := CostModel{Seek: 8 * time.Millisecond, Transfer: 25 * time.Microsecond, CacheHit: 200 * time.Nanosecond}
	d := NewDevice(cost, 16)
	f := d.CreateFile("f")
	for p := 0; p < 3; p++ {
		if _, err := d.AppendPage(f, page(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetClock()
	d.DropCaches()
	buf := make([]byte, PageSize)
	for i := int64(0); i < 3; i++ { // sequential misses: 1 seek + 3 transfers
		if err := d.ReadPage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadPage(f, 1, buf); err != nil { // cache hit
		t.Fatal(err)
	}
	d.AdvanceClock(time.Millisecond) // CPU charge
	want := cost.Seek + 3*cost.Transfer + cost.CacheHit + time.Millisecond
	if got := d.Clock(); got != want {
		t.Fatalf("single-channel Clock() = %v, want exact sum %v", got, want)
	}
}

// TestDropCachesForgetsEveryChannel is the regression test for the
// multi-channel DropCaches contract: after a drop, the next read on every
// channel pays a seek — no channel may keep its head position.
func TestDropCachesForgetsEveryChannel(t *testing.T) {
	d := NewDeviceChannels(DefaultCostModel(), 64, 2)
	a, b := twoChannelFiles(t, d, 3)
	buf := make([]byte, PageSize)
	// Establish both heads mid-file with platter reads (the appends above
	// populated the write-through cache, so clear it first or the reads
	// would be hits and move no head).
	establish := func() {
		d.cache.Clear()
		for _, id := range []FileID{a, b} {
			for i := int64(0); i < 2; i++ {
				if err := d.ReadPage(id, i, buf); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	establish()
	// Control: without a drop, continuing each run is sequential (page 2 is
	// no longer cached — the pre-establish clear removed the appends' entry).
	d.ResetStats()
	if err := d.ReadPage(a, 2, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(b, 2, buf); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Seeks != 0 || s.SeqPages != 2 {
		t.Fatalf("pre-drop continuation: %d seeks, %d seq; want 0 and 2", s.Seeks, s.SeqPages)
	}

	// Re-establish heads, drop, and continue: every channel must now seek.
	establish()
	d.DropCaches()
	d.ResetStats()
	if err := d.ReadPage(a, 2, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(b, 2, buf); err != nil {
		t.Fatal(err)
	}
	cs := d.ChannelStats()
	for _, c := range cs {
		if c.Seeks != 1 || c.SeqPages != 0 {
			t.Fatalf("post-drop channel %d: %d seeks, %d seq; want exactly 1 seek", c.Channel, c.Seeks, c.SeqPages)
		}
	}
}

// TestResetStatsClearsChannels verifies stat resets fan out to the
// per-channel counters.
func TestResetStatsClearsChannels(t *testing.T) {
	d := NewDeviceChannels(DefaultCostModel(), 0, 4)
	f := d.CreateFile("f")
	if _, err := d.AppendPage(f, page(1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Seeks == 0 {
		t.Fatal("setup produced no seeks")
	}
	d.ResetStats()
	if s := d.Stats(); s.Seeks != 0 || s.SeqPages != 0 {
		t.Fatalf("ResetStats left channel counters: %+v", s)
	}
	for _, c := range d.ChannelStats() {
		if c.Seeks != 0 || c.SeqPages != 0 {
			t.Fatalf("ResetStats left channel %d counters: %+v", c.Channel, c)
		}
	}
	d.ResetClock()
	if d.Clock() != 0 {
		t.Fatalf("ResetClock left %v on the clock", d.Clock())
	}
	for _, c := range d.ChannelStats() {
		if c.Busy != 0 {
			t.Fatalf("ResetClock left channel %d busy %v", c.Channel, c.Busy)
		}
	}
}
