package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func page(fill byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestCreateWriteRead(t *testing.T) {
	d := NewDefaultDevice(16)
	f := d.CreateFile("data")
	idx, err := d.AppendPage(f, page(0xAB))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("first append idx = %d", idx)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0xAB)) {
		t.Fatal("read data mismatch")
	}
	if n, _ := d.NumPages(f); n != 1 {
		t.Fatalf("NumPages = %d", n)
	}
	name, err := d.FileName(f)
	if err != nil || name != "data" {
		t.Fatalf("FileName = %q, %v", name, err)
	}
}

func TestWriteInPlace(t *testing.T) {
	d := NewDefaultDevice(16)
	f := d.CreateFile("data")
	if _, err := d.AppendPage(f, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(f, 0, page(2)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("in-place write not visible, got %d", buf[0])
	}
}

func TestErrors(t *testing.T) {
	d := NewDefaultDevice(16)
	f := d.CreateFile("data")
	buf := make([]byte, PageSize)

	if err := d.ReadPage(FileID(999), 0, buf); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("read unknown file: %v", err)
	}
	if err := d.ReadPage(f, 0, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past EOF: %v", err)
	}
	if err := d.ReadPage(f, -1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read negative idx: %v", err)
	}
	if err := d.ReadPage(f, 0, make([]byte, 10)); !errors.Is(err, ErrBadPageSize) {
		t.Errorf("short buffer: %v", err)
	}
	if _, err := d.AppendPage(f, make([]byte, 10)); !errors.Is(err, ErrBadPageSize) {
		t.Errorf("short append: %v", err)
	}
	if err := d.WritePage(f, 5, page(0)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write past EOF: %v", err)
	}
	if err := d.DeleteFile(FileID(999)); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("delete unknown file: %v", err)
	}
}

func TestDeleteFile(t *testing.T) {
	d := NewDefaultDevice(16)
	f := d.CreateFile("data")
	if _, err := d.AppendPage(f, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteFile(f); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("read deleted file: %v", err)
	}
	if d.TotalPages() != 0 {
		t.Errorf("TotalPages after delete = %d", d.TotalPages())
	}
}

func TestSequentialVsRandomCost(t *testing.T) {
	cost := CostModel{Seek: time.Millisecond, Transfer: time.Microsecond}
	d := NewDevice(cost, 0) // no cache
	f := d.CreateFile("data")
	for i := 0; i < 10; i++ {
		if _, err := d.AppendPage(f, page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Appends: first pays a seek, the rest are sequential.
	wantBuild := cost.Seek + 10*cost.Transfer
	if got := d.Clock(); got != wantBuild {
		t.Fatalf("build clock = %v, want %v", got, wantBuild)
	}

	d.ResetClock()
	buf := make([]byte, PageSize)
	// Sequential scan of all 10 pages: the first read follows the last
	// append (page 9), so it pays a seek; the rest stream.
	for i := int64(0); i < 10; i++ {
		if err := d.ReadPage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	wantScan := cost.Seek + 10*cost.Transfer
	if got := d.Clock(); got != wantScan {
		t.Fatalf("sequential scan clock = %v, want %v", got, wantScan)
	}

	d.ResetClock()
	// Random reads: every one seeks.
	for _, i := range []int64{5, 2, 8, 1} {
		if err := d.ReadPage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	wantRandom := 4 * (cost.Seek + cost.Transfer)
	if got := d.Clock(); got != wantRandom {
		t.Fatalf("random read clock = %v, want %v", got, wantRandom)
	}
}

func TestCacheHitsAreCheap(t *testing.T) {
	cost := CostModel{Seek: time.Millisecond, Transfer: time.Microsecond, CacheHit: time.Nanosecond}
	d := NewDevice(cost, 8)
	f := d.CreateFile("data")
	if _, err := d.AppendPage(f, page(1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	// Append populated the cache; this read is a hit.
	d.ResetClock()
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Clock(); got != cost.CacheHit {
		t.Fatalf("cache-hit clock = %v, want %v", got, cost.CacheHit)
	}
	st := d.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d", st.CacheHits)
	}

	// Dropping caches forces platter reads again.
	d.DropCaches()
	d.ResetClock()
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Clock(); got != cost.Seek+cost.Transfer {
		t.Fatalf("post-drop clock = %v", got)
	}
}

func TestCacheEviction(t *testing.T) {
	d := NewDevice(CostModel{Seek: 1, Transfer: 1, CacheHit: 0}, 2)
	f := d.CreateFile("data")
	for i := 0; i < 3; i++ {
		if _, err := d.AppendPage(f, page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Cache capacity 2: appends of pages 0,1,2 leave {1,2} cached.
	if got := d.CachedPages(); got != 2 {
		t.Fatalf("CachedPages = %d", got)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("page 0 should have been evicted; hits = %d", st.CacheHits)
	}
}

func TestSetCacheCapacityShrinks(t *testing.T) {
	d := NewDevice(CostModel{}, 10)
	f := d.CreateFile("data")
	for i := 0; i < 5; i++ {
		if _, err := d.AppendPage(f, page(0)); err != nil {
			t.Fatal(err)
		}
	}
	d.SetCacheCapacity(2)
	if got := d.CachedPages(); got != 2 {
		t.Fatalf("CachedPages after shrink = %d", got)
	}
	d.SetCacheCapacity(0)
	if got := d.CachedPages(); got != 0 {
		t.Fatalf("CachedPages after disable = %d", got)
	}
}

func TestReadRun(t *testing.T) {
	d := NewDefaultDevice(0)
	f := d.CreateFile("data")
	for i := 0; i < 4; i++ {
		if _, err := d.AppendPage(f, page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := d.ReadRun(f, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 2*PageSize || buf[0] != 1 || buf[PageSize] != 2 {
		t.Fatal("ReadRun returned wrong data")
	}
	if _, err := d.ReadRun(f, 3, 2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadRun past EOF: %v", err)
	}
	if _, err := d.ReadRun(f, 0, -1); err == nil {
		t.Error("ReadRun negative length succeeded")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := NewDevice(CostModel{Seek: 1, Transfer: 1}, 4)
	f := d.CreateFile("data")
	for i := 0; i < 3; i++ {
		if _, err := d.AppendPage(f, page(0)); err != nil {
			t.Fatal(err)
		}
	}
	d.DropCaches()
	buf := make([]byte, PageSize)
	for i := int64(0); i < 3; i++ {
		if err := d.ReadPage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.PageWrites != 3 || st.PageReads != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != 3*PageSize || st.BytesWritten != 3*PageSize {
		t.Fatalf("byte stats = %+v", st)
	}
	// writes: 1 seek + 2 seq; reads after drop: 1 seek + 2 seq
	if st.Seeks != 2 || st.SeqPages != 4 {
		t.Fatalf("seek stats = %+v", st)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{PageReads: 1, PageWrites: 2, CacheHits: 3, Seeks: 4, SeqPages: 5, BytesRead: 6, BytesWritten: 7}
	b := a
	a.Add(b)
	want := Stats{PageReads: 2, PageWrites: 4, CacheHits: 6, Seeks: 8, SeqPages: 10, BytesRead: 12, BytesWritten: 14}
	if a != want {
		t.Fatalf("Add = %+v", a)
	}
}

func TestInjectReadFault(t *testing.T) {
	d := NewDefaultDevice(0)
	f := d.CreateFile("data")
	if _, err := d.AppendPage(f, page(1)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("media error")
	d.InjectReadFault(f, 0, boom)
	buf := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, buf); !errors.Is(err, boom) {
		t.Fatalf("fault not delivered: %v", err)
	}
	// One-shot: second read succeeds.
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
}

func TestAdvanceClock(t *testing.T) {
	d := NewDefaultDevice(0)
	d.AdvanceClock(5 * time.Millisecond)
	if got := d.Clock(); got != 5*time.Millisecond {
		t.Fatalf("Clock = %v", got)
	}
	d.AdvanceClock(-time.Second) // ignored
	if got := d.Clock(); got != 5*time.Millisecond {
		t.Fatalf("Clock after negative advance = %v", got)
	}
}

func TestDefaultAndSSDCostModels(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Error(err)
	}
	if err := SSDCostModel().Validate(); err != nil {
		t.Error(err)
	}
	bad := CostModel{Seek: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative cost validated")
	}
	if DefaultCostModel().Seek <= SSDCostModel().Seek {
		t.Error("SAS seek should exceed SSD seek")
	}
}

func TestWriteIsolation(t *testing.T) {
	// The device must copy page data on write so callers can reuse buffers.
	d := NewDefaultDevice(4)
	f := d.CreateFile("data")
	buf := page(1)
	if _, err := d.AppendPage(f, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate caller buffer
	out := make([]byte, PageSize)
	if err := d.ReadPage(f, 0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatal("device aliased caller buffer")
	}
}
