package simdisk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// FileID identifies a page file on a Device.
type FileID uint32

// InvalidFile is the zero FileID; no valid file ever has it.
const InvalidFile FileID = 0

// Common device errors.
var (
	// ErrNoSuchFile is returned for operations on unknown or deleted files.
	ErrNoSuchFile = errors.New("simdisk: no such file")
	// ErrOutOfRange is returned when a page index is past end of file.
	ErrOutOfRange = errors.New("simdisk: page index out of range")
	// ErrBadPageSize is returned when a write buffer is not PageSize bytes.
	ErrBadPageSize = errors.New("simdisk: page buffer must be exactly PageSize bytes")
	// ErrDeviceClosed is returned for file operations on a closed device.
	ErrDeviceClosed = errors.New("simdisk: device closed")
)

// Stats aggregates device activity since the last Reset.
type Stats struct {
	PageReads    int64 // pages read from the platter (cache misses)
	PageWrites   int64 // pages written
	CacheHits    int64 // reads served by the buffer cache
	Seeks        int64 // non-sequential repositionings
	SeqPages     int64 // platter accesses that were sequential
	BytesRead    int64
	BytesWritten int64
	CanceledOps  int64 // device operations aborted by context cancellation
	// CoalescedReads and CoalescedPages count the single-flight read path
	// (SetShareReads): run reads answered by attaching to an overlapping
	// in-flight read, and the pages those attachments did not have to read
	// again. Both stay zero with sharing off. A coalesced page appears in no
	// other counter — it was neither a platter read nor a cache hit.
	CoalescedReads int64
	CoalescedPages int64
	// QueuedDelay is the total arrival-gated queueing delay charged to
	// scoped operations: simulated time spent waiting behind earlier
	// operations on the same channel. It is attribution, not extra device
	// work — channel busy time and Clock() never include it. Zero on serial
	// single-stream workloads and for PriUrgent scopes.
	QueuedDelay time.Duration
	// ThrottledOps counts maintenance operations that waited (wall-clock
	// only) for the background I/O budget (SetMaintenanceBudget) at least
	// once before proceeding.
	ThrottledOps int64
	// Fault-injection and retry ledger (see FaultPlan / RetryPolicy).
	// Faulted read attempts are rejected before any charge, so none of them
	// appear in PageReads or the clock; LatencySpikes stall wall-clock
	// emulation only. RetriedOps counts retry attempts performed;
	// RetryExhausted counts reads that still failed after their last attempt
	// or that the backoff budget cut off.
	TransientFaults int64
	PermanentFaults int64
	LatencySpikes   int64
	RetriedOps      int64
	RetryExhausted  int64
}

// ChannelStats snapshots one I/O channel's activity: the platter time it
// has been busy and its share of the seek/sequential split. Busy is the
// per-channel component of the simulated clock — on a multi-channel device
// Clock() reports the busiest channel plus the shared (CPU + cache-hit)
// time.
type ChannelStats struct {
	Channel  int
	Busy     time.Duration
	Seeks    int64
	SeqPages int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.CacheHits += o.CacheHits
	s.Seeks += o.Seeks
	s.SeqPages += o.SeqPages
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.CanceledOps += o.CanceledOps
	s.CoalescedReads += o.CoalescedReads
	s.CoalescedPages += o.CoalescedPages
	s.QueuedDelay += o.QueuedDelay
	s.ThrottledOps += o.ThrottledOps
	s.TransientFaults += o.TransientFaults
	s.PermanentFaults += o.PermanentFaults
	s.LatencySpikes += o.LatencySpikes
	s.RetriedOps += o.RetriedOps
	s.RetryExhausted += o.RetryExhausted
}

// file is one page file stored entirely in memory. Its pages are guarded by
// a per-file RWMutex so parallel readers of the same file never serialize on
// device-wide state.
type file struct {
	name    string
	mu      sync.RWMutex
	pages   [][]byte
	deleted bool
}

// channel is one independent I/O channel of a Device: its own platter head
// (sequential-run detection) and its own busy-time accumulator. A file lives
// entirely on one channel (chosen by FileID), so sequential runs within a
// file are detected exactly as on a single-head disk, while misses on files
// of different channels neither interleave each other's runs nor serialize
// on a shared head mutex.
type channel struct {
	mu        sync.Mutex // guards the head position and free frontier below
	lastFile  FileID
	lastPage  int64
	lastValid bool
	// free is the channel's virtual availability frontier: the simulated
	// time (on the busy clock's epoch) at which the head finishes its last
	// accepted operation. An arriving scoped operation that finds free
	// ahead of its own arrival time is charged the difference as queueing
	// delay. free only ever meets or exceeds the busy sum — scope gaps
	// (a scope returning to a channel after working elsewhere) advance it
	// past busy, exactly like an idle head waiting for the next request.
	free int64

	busy     atomic.Int64 // platter nanoseconds charged to this channel
	seeks    atomic.Int64
	seqPages atomic.Int64
}

// Device is a simulated disk: a set of page files, a cost model, a buffer
// cache, one or more I/O channels and a simulated clock. All methods are
// safe for concurrent use, and the locking is fine-grained so parallel
// readers scale:
//
//   - the files map has its own RWMutex (file create/delete exclusive,
//     lookups shared);
//   - each file's pages have a per-file RWMutex (reads shared, writes and
//     appends exclusive per file);
//   - the buffer cache is a sharded LRU — cache hits contend only on one
//     shard's mutex, with per-shard hit counters aggregated on read;
//   - the clocks and the byte/page counters are atomics;
//   - each channel's head position (sequential-run detection) is its own
//     short mutex, serializing exactly the accesses one platter arm
//     serializes anyway: the cache misses of that channel's files.
//
// Simulated time on a multi-channel device is the critical path under
// perfect channel overlap: Clock() returns the busiest channel's platter
// time plus the shared (cache-hit and CPU) time. With one channel this is
// bit-for-bit the single-accumulator clock of the original model.
type Device struct {
	cost CostModel

	mu    sync.RWMutex // guards files map membership and id allocation
	files map[FileID]*file
	next  FileID

	channels []channel
	shared   atomic.Int64 // non-platter simulated nanoseconds (cache hits, CPU)
	cache    *shardedCache

	// device counters (Stats), all atomics; CacheHits lives in the cache's
	// per-shard counters, Seeks/SeqPages in the channels.
	pageReads    atomic.Int64
	pageWrites   atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	canceledOps  atomic.Int64

	// Failure injection (see faults.go): readFaults holds one-shot injected
	// faults, faults the installed FaultPlan's evaluation state. faultsArmed
	// counts armed one-shots plus one for an active plan, letting the hot
	// path skip faultMu entirely when nothing is injected. retry holds the
	// page-read retry policy (see retry.go).
	faultMu         sync.Mutex
	faultsArmed     atomic.Int32
	readFaults      map[pageKey]error
	faults          *faultState
	retry           atomic.Pointer[RetryPolicy]
	transientFaults atomic.Int64
	permanentFaults atomic.Int64
	latencySpikes   atomic.Int64
	retriedOps      atomic.Int64
	retryExhausted  atomic.Int64

	// Single-flight run coalescing (SetShareReads): sfInflight registers the
	// in-flight run reads of each file so overlapping readers can attach.
	// Off by default; the flag keeps the uncoalesced path lock-free.
	shareReads     atomic.Bool
	sfMu           sync.Mutex
	sfInflight     map[FileID][]*inflightRun
	coalescedReads atomic.Int64
	coalescedPages atomic.Int64

	// QoS state (see qos.go): queuedDelay and throttledOps are the Stats
	// counters; fgInFlight counts scoped foreground/urgent operations
	// currently inside the device (the signal the maintenance throttle
	// watches); maintBudget holds the float64 bits of the background I/O
	// budget fraction (0 = throttling off); fgBusy/maintBusy split platter
	// time by class for the budget's share test.
	queuedDelay  atomic.Int64
	throttledOps atomic.Int64
	fgInFlight   atomic.Int64
	maintBudget  atomic.Uint64
	fgBusy       atomic.Int64
	maintBusy    atomic.Int64

	// realTime holds the float64 bits of the real-time emulation scale
	// (0 = off). See SetRealTimeScale.
	realTime atomic.Uint64

	// closed is set by Close; every file-handle resolution checks it, so all
	// page I/O and file lifecycle operations on a closed device fail with
	// ErrDeviceClosed.
	closed atomic.Bool
}

// NewDevice creates a single-channel Device with the given cost model and
// buffer-cache capacity in pages. cacheCapacity <= 0 disables caching
// entirely.
func NewDevice(cost CostModel, cacheCapacity int) *Device {
	return NewDeviceChannels(cost, cacheCapacity, 1)
}

// NewDeviceChannels creates a Device with channels independent I/O channels
// (per-channel head position and busy time). channels <= 0 defaults to 1,
// which reproduces the original single-head cost model exactly.
func NewDeviceChannels(cost CostModel, cacheCapacity, channels int) *Device {
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	if channels <= 0 {
		channels = 1
	}
	return &Device{
		cost:       cost,
		files:      make(map[FileID]*file),
		next:       1,
		channels:   make([]channel, channels),
		cache:      newShardedCache(cacheCapacity),
		readFaults: make(map[pageKey]error),
		sfInflight: make(map[FileID][]*inflightRun),
	}
}

// channelOf returns the channel serving a file. The assignment is static —
// a multiplicative hash of the FileID — so a file's sequential runs always
// meet the same head, while structured allocation patterns (e.g. the
// raw/tree file pairs datasets allocate, which make every tree file id
// even) still spread across channels. With one channel this is always
// channel 0, the original single-head model.
func (d *Device) channelOf(id FileID) *channel {
	// Knuth multiplicative hash, mapped to the channel range via its high
	// bits (a plain modulus would only see the low bits, which structured
	// id patterns keep biased).
	h := uint32(id) * 2654435761
	return &d.channels[(uint64(h)*uint64(len(d.channels)))>>32]
}

// NewDefaultDevice creates a Device with the paper's SAS cost model and a
// cache of cachePages pages.
func NewDefaultDevice(cachePages int) *Device {
	return NewDevice(DefaultCostModel(), cachePages)
}

// lookup resolves a file handle under the shared map lock.
func (d *Device) lookup(id FileID) (*file, error) {
	if d.closed.Load() {
		return nil, ErrDeviceClosed
	}
	d.mu.RLock()
	f, ok := d.files[id]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	return f, nil
}

// Close marks the device closed and releases the buffer cache. Subsequent
// file operations fail with ErrDeviceClosed; clock and stats inspection
// keep working so a session can be audited after shutdown. Idempotent.
func (d *Device) Close() error {
	d.closed.Store(true)
	d.cache.Clear()
	return nil
}

// CreateFile allocates a new empty page file and returns its handle, or
// InvalidFile on a closed device (every operation on InvalidFile then fails
// with ErrDeviceClosed via lookup).
func (d *Device) CreateFile(name string) FileID {
	if d.closed.Load() {
		return InvalidFile
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.files[id] = &file{name: name}
	return id
}

// DeleteFile removes a file, releasing its pages and cache entries. Deleting
// merge files under the space budget goes through here.
func (d *Device) DeleteFile(id FileID) error {
	if d.closed.Load() {
		return ErrDeviceClosed
	}
	d.mu.Lock()
	f, ok := d.files[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	delete(d.files, id)
	d.mu.Unlock()
	// Mark the struct deleted under its write lock: in-flight readers that
	// resolved the handle before the map removal either finish first (and
	// any cache entries they insert are purged below) or observe the flag
	// and fail — no page of a deleted file can linger in the cache.
	f.mu.Lock()
	f.deleted = true
	f.mu.Unlock()
	d.cache.RemoveFile(id)
	ch := d.channelOf(id)
	ch.mu.Lock()
	if ch.lastValid && ch.lastFile == id {
		ch.lastValid = false
	}
	ch.mu.Unlock()
	return nil
}

// FileName returns the debug name a file was created with.
func (d *Device) FileName(id FileID) (string, error) {
	f, err := d.lookup(id)
	if err != nil {
		return "", err
	}
	return f.name, nil
}

// NumPages returns the current length of the file in pages.
func (d *Device) NumPages(id FileID) (int64, error) {
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.RLock()
	n := int64(len(f.pages))
	f.mu.RUnlock()
	return n, nil
}

// readPage is ReadPage without the real-time emulation: it returns the
// charged simulated duration so callers (ReadRun) can aggregate sleeps. The
// context (nil allowed) is checked before any charge, so a read that aborts
// here has cost nothing — ReadRunCtx relies on this to stop charging exactly
// at the page boundary where cancellation was observed.
func (d *Device) readPage(ctx context.Context, id FileID, idx int64, buf []byte) (time.Duration, error) {
	if err := d.checkCtx(ctx); err != nil {
		return 0, err
	}
	if len(buf) != PageSize {
		return 0, ErrBadPageSize
	}
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.RLock()
	if f.deleted {
		f.mu.RUnlock()
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		n := len(f.pages)
		f.mu.RUnlock()
		return 0, fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, n)
	}
	key := pageKey{id, idx}
	var spike time.Duration
	if d.faultsArmed.Load() > 0 {
		sp, ferr := d.takeFault(key)
		if ferr != nil {
			f.mu.RUnlock()
			return 0, ferr
		}
		spike = sp
	}
	var dt time.Duration
	s := ScopeFrom(ctx)
	if d.cache.Touch(key) {
		dt = d.cost.CacheHit
		d.shared.Add(int64(dt))
		s.noteShared(dt)
	} else {
		dt = d.chargePlatter(s, key)
		d.pageReads.Add(1)
		d.bytesRead.Add(PageSize)
	}
	copy(buf, f.pages[idx])
	f.mu.RUnlock()
	// A latency spike stretches only the wall-clock emulation sleep the
	// caller performs — the simulated clock and scope charges above saw the
	// normal service time, so a limping head slows serving without changing
	// any cost accounting.
	return dt + spike, nil
}

// ReadPage reads page idx of file id into buf (which must be PageSize
// bytes). A cached page pays CacheHit; otherwise the access pays Transfer,
// plus Seek if it does not continue the previous platter access. Parallel
// reads of cached pages proceed concurrently.
func (d *Device) ReadPage(id FileID, idx int64, buf []byte) error {
	dt, err := d.readPageRetry(nil, id, idx, buf)
	if err != nil {
		return err
	}
	d.emulate(dt)
	return nil
}

// WritePage overwrites an existing page in place (partition refinement
// reuses the pages the old partition occupied). The write pays platter cost
// and refreshes the cache (write-through).
func (d *Device) WritePage(id FileID, idx int64, data []byte) error {
	return d.WritePageCtx(nil, id, idx, data)
}

// WritePageCtx is WritePage with cancellation and QoS: the context is
// checked before any charge or mutation (an abort there has cost and changed
// nothing), the platter charge is attributed to the context's OpScope, and a
// maintenance-scoped write waits out the background I/O budget first. Once
// the page is written the operation is charged and durable — only the
// real-time emulation sleep can still be cut short, returning the
// cancellation error with the write already applied.
func (d *Device) WritePageCtx(ctx context.Context, id FileID, idx int64, data []byte) error {
	if err := d.checkCtx(ctx); err != nil {
		return err
	}
	if len(data) != PageSize {
		return ErrBadPageSize
	}
	s := ScopeFrom(ctx)
	if err := d.gateOp(ctx, s); err != nil {
		return err
	}
	defer d.ungateOp(s)
	f, err := d.lookup(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.deleted {
		f.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		n := len(f.pages)
		f.mu.Unlock()
		return fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, n)
	}
	key := pageKey{id, idx}
	dt := d.chargePlatter(s, key)
	d.pageWrites.Add(1)
	d.bytesWritten.Add(PageSize)
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages[idx] = page
	// Insert under f.mu so DeleteFile's purge (which takes f.mu first)
	// cannot interleave and leave a dead key cached.
	d.cache.Insert(key)
	f.mu.Unlock()
	return d.emulateCtx(ctx, dt)
}

// AppendPage appends data as a new page at the end of the file and returns
// its index. Appends to the file most recently touched at its tail are
// sequential.
func (d *Device) AppendPage(id FileID, data []byte) (int64, error) {
	return d.AppendPageCtx(nil, id, data)
}

// AppendPageCtx is AppendPage with cancellation and QoS, with the same
// contract as WritePageCtx: abort before the charge costs nothing; once the
// page is appended it is charged and durable.
func (d *Device) AppendPageCtx(ctx context.Context, id FileID, data []byte) (int64, error) {
	if err := d.checkCtx(ctx); err != nil {
		return 0, err
	}
	if len(data) != PageSize {
		return 0, ErrBadPageSize
	}
	s := ScopeFrom(ctx)
	if err := d.gateOp(ctx, s); err != nil {
		return 0, err
	}
	defer d.ungateOp(s)
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.deleted {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	idx := int64(len(f.pages))
	key := pageKey{id, idx}
	dt := d.chargePlatter(s, key)
	d.pageWrites.Add(1)
	d.bytesWritten.Add(PageSize)
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages = append(f.pages, page)
	d.cache.Insert(key) // under f.mu; see WritePage
	f.mu.Unlock()
	if err := d.emulateCtx(ctx, dt); err != nil {
		return idx, err
	}
	return idx, nil
}

// ReadRun reads n consecutive pages starting at start into a single buffer
// of n*PageSize bytes. It is the sequential-scan primitive partitions and
// merge files use. Real-time emulation sleeps once for the whole run, not
// per page, so OS sleep granularity does not inflate sequential scans.
func (d *Device) ReadRun(id FileID, start, n int64) ([]byte, error) {
	return d.ReadRunCtx(nil, id, start, n)
}

// chargePlatter advances the file's channel clock for one platter access to
// key, paying a seek unless the access continues that channel's previous
// one. The access is arrival-aware: under the channel mutex it computes the
// operation's arrival time (the scope's virtual timeline position; for the
// scope's first access, or with no scope, exactly the channel's free
// frontier), starts it no earlier than the frontier, and charges the scope
// the service time plus any arrival-gated queueing delay. Channel busy time
// accumulates pure service time, so Clock() and conservation (scope charges
// sum to busy) are independent of interleaving. PriUrgent scopes jump the
// queue: no delay charged, their timeline advances by service time alone.
// It returns the duration the operation should sleep under real-time
// emulation: service plus charged delay.
func (d *Device) chargePlatter(s *OpScope, key pageKey) time.Duration {
	ch := d.channelOf(key.file)
	ch.mu.Lock()
	sequential := ch.lastValid && ch.lastFile == key.file && key.page == ch.lastPage+1
	ch.lastFile, ch.lastPage, ch.lastValid = key.file, key.page, true
	svc := d.cost.Transfer
	if !sequential {
		svc += d.cost.Seek
	}
	var delay int64
	if s == nil {
		// Unscoped access: arrives exactly when the head frees up.
		ch.free += int64(svc)
	} else {
		arrival := s.now.Load()
		if arrival < 0 {
			arrival = ch.free // first access positions the scope's timeline
		}
		start := arrival
		if ch.free > start {
			start = ch.free
		}
		ch.free = start + int64(svc)
		if s.pri == PriUrgent {
			// Queue jump: completion is arrival + service, no delay.
			s.now.Store(arrival + int64(svc))
		} else {
			delay = start - arrival
			s.now.Store(start + int64(svc))
		}
	}
	ch.mu.Unlock()
	if sequential {
		ch.seqPages.Add(1)
	} else {
		ch.seeks.Add(1)
	}
	ch.busy.Add(int64(svc))
	if s == nil || s.pri != PriMaintenance {
		d.fgBusy.Add(int64(svc))
	} else {
		d.maintBusy.Add(int64(svc))
	}
	if s != nil {
		s.charged.Add(int64(svc))
		if delay > 0 {
			s.queued.Add(delay)
			d.queuedDelay.Add(delay)
		}
	}
	return svc + time.Duration(delay)
}

// takeFault evaluates the injected faults for one platter-path read of key:
// armed one-shots first, then the installed FaultPlan (see faults.go).
func (d *Device) takeFault(key pageKey) (time.Duration, error) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	return d.evalFaultLocked(key)
}

// Clock returns the simulated time elapsed since creation or the last
// ResetClock: the busiest channel's platter time plus the shared (cache-hit
// and CPU) time. On a single-channel device this is exactly the sum of
// every charge; with C > 1 it is the critical path under perfect channel
// overlap — the time the device needs when all channels work in parallel.
// Wall-clock behaviour under real-time emulation stays honest either way:
// every operation still sleeps its own full latency, so a serial caller
// never observes the overlap it does not exploit.
func (d *Device) Clock() time.Duration {
	var maxBusy int64
	for i := range d.channels {
		if b := d.channels[i].busy.Load(); b > maxBusy {
			maxBusy = b
		}
	}
	return time.Duration(d.shared.Load() + maxBusy)
}

// ResetClock zeroes the simulated clock — the shared accumulator and every
// channel's busy time (stats are unaffected).
func (d *Device) ResetClock() {
	d.shared.Store(0)
	for i := range d.channels {
		ch := &d.channels[i]
		ch.busy.Store(0)
		ch.mu.Lock()
		ch.free = 0 // same epoch as busy; new scopes re-position from zero
		ch.mu.Unlock()
	}
}

// AdvanceClock adds a CPU-side cost to the simulated clock. Engines use it
// to charge in-memory processing (e.g. intersection tests) so that CPU-bound
// phases are not free; the default experiments leave CPU costs at zero,
// matching the paper's disk-bound setting. CPU time is charged to the shared
// accumulator, never to a channel, so per-channel utilization stays pure
// platter time.
func (d *Device) AdvanceClock(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.shared.Add(int64(dt))
	d.emulate(dt)
}

// SetRealTimeScale turns on real-time emulation: every charged simulated
// duration additionally sleeps scale times that duration in wall-clock time
// (outside all locks), so concurrent queries genuinely overlap their
// simulated I/O waits the way they would overlap device latency on real
// hardware. scale <= 0 (the default) disables emulation. Sub-microsecond
// scaled costs (cache hits) never sleep.
func (d *Device) SetRealTimeScale(scale float64) {
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 0
	}
	d.realTime.Store(math.Float64bits(scale))
}

// RealTimeScale returns the current real-time emulation scale (0 = off).
func (d *Device) RealTimeScale() float64 {
	return math.Float64frombits(d.realTime.Load())
}

// emulate sleeps the scaled wall-clock equivalent of a charged simulated
// duration when real-time emulation is on. Called with no locks held.
func (d *Device) emulate(dt time.Duration) {
	_ = d.emulateCtx(nil, dt)
}

// emulateCtx is emulate with an abortable wait: when ctx (nil allowed) is
// canceled mid-sleep the wait ends immediately and the cancellation error is
// returned, so a real-time emulated device never holds an abandoned query
// hostage for the remainder of its simulated latency. The simulated clock
// was charged before the sleep either way — the I/O itself happened; only
// the wall-clock wait is cut short. Called with no locks held.
func (d *Device) emulateCtx(ctx context.Context, dt time.Duration) error {
	bits := d.realTime.Load()
	if bits == 0 || dt <= 0 {
		return nil
	}
	ns := float64(dt) * math.Float64frombits(bits)
	if ns < 1000 { // below timer resolution; cache hits are meant to be free
		return nil
	}
	if ctx == nil {
		time.Sleep(time.Duration(ns))
		return nil
	}
	timer := time.NewTimer(time.Duration(ns))
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		d.canceledOps.Add(1)
		return Canceled(ctx.Err())
	}
}

// Stats returns a snapshot of the device counters, aggregating the cache's
// per-shard hit counters and the channels' seek counters. Under concurrent
// load the snapshot is a consistent sum of per-counter values, not an
// instantaneous cross-counter cut.
func (d *Device) Stats() Stats {
	s := Stats{
		PageReads:       d.pageReads.Load(),
		PageWrites:      d.pageWrites.Load(),
		CacheHits:       d.cache.Hits(),
		BytesRead:       d.bytesRead.Load(),
		BytesWritten:    d.bytesWritten.Load(),
		CanceledOps:     d.canceledOps.Load(),
		CoalescedReads:  d.coalescedReads.Load(),
		CoalescedPages:  d.coalescedPages.Load(),
		QueuedDelay:     time.Duration(d.queuedDelay.Load()),
		ThrottledOps:    d.throttledOps.Load(),
		TransientFaults: d.transientFaults.Load(),
		PermanentFaults: d.permanentFaults.Load(),
		LatencySpikes:   d.latencySpikes.Load(),
		RetriedOps:      d.retriedOps.Load(),
		RetryExhausted:  d.retryExhausted.Load(),
	}
	for i := range d.channels {
		s.Seeks += d.channels[i].seeks.Load()
		s.SeqPages += d.channels[i].seqPages.Load()
	}
	return s
}

// ResetStats zeroes the device counters, including every channel's.
func (d *Device) ResetStats() {
	d.pageReads.Store(0)
	d.pageWrites.Store(0)
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.canceledOps.Store(0)
	d.coalescedReads.Store(0)
	d.coalescedPages.Store(0)
	d.queuedDelay.Store(0)
	d.throttledOps.Store(0)
	d.transientFaults.Store(0)
	d.permanentFaults.Store(0)
	d.latencySpikes.Store(0)
	d.retriedOps.Store(0)
	d.retryExhausted.Store(0)
	d.fgBusy.Store(0)
	d.maintBusy.Store(0)
	for i := range d.channels {
		d.channels[i].seeks.Store(0)
		d.channels[i].seqPages.Store(0)
	}
	d.cache.ResetHits()
}

// DropCaches empties the buffer cache and forgets every channel's head
// position, exactly like the paper's methodology of overwriting OS caches
// before each query: the next read on any channel pays a seek.
func (d *Device) DropCaches() {
	d.cache.Clear()
	for i := range d.channels {
		ch := &d.channels[i]
		ch.mu.Lock()
		ch.lastValid = false
		ch.mu.Unlock()
	}
}

// NumChannels returns the device's I/O channel count.
func (d *Device) NumChannels() int { return len(d.channels) }

// ChannelStats snapshots every channel's busy time and seek counters.
func (d *Device) ChannelStats() []ChannelStats {
	out := make([]ChannelStats, len(d.channels))
	for i := range d.channels {
		ch := &d.channels[i]
		out[i] = ChannelStats{
			Channel:  i,
			Busy:     time.Duration(ch.busy.Load()),
			Seeks:    ch.seeks.Load(),
			SeqPages: ch.seqPages.Load(),
		}
	}
	return out
}

// NumDevices implements Storage: a Device is its own single-member array.
func (d *Device) NumDevices() int { return 1 }

// PlacementName implements Storage; a single device places nothing.
func (d *Device) PlacementName() string { return "single" }

// DeviceStats implements Storage: the per-member view of a single device.
func (d *Device) DeviceStats() []Stats { return []Stats{d.Stats()} }

// DeviceChannelStats implements Storage: per-member, per-channel counters.
func (d *Device) DeviceChannelStats() [][]ChannelStats {
	return [][]ChannelStats{d.ChannelStats()}
}

// CreateFileInGroup implements Storage. On a single device the affinity
// group is irrelevant; a DeviceArray uses it to co-locate related files.
func (d *Device) CreateFileInGroup(name, group string) FileID {
	return d.CreateFile(name)
}

// CachedPages returns the number of pages currently cached.
func (d *Device) CachedPages() int {
	return d.cache.Len()
}

// SetCacheCapacity resizes the buffer cache (in pages).
func (d *Device) SetCacheCapacity(pages int) {
	d.cache.SetCapacity(pages)
}

// InjectReadFault arms a one-shot read error on (id, idx): the next platter
// read of that page fails with a transient-classified fault that unwraps to
// err (so errors.Is matches both ErrTransient and err). Tests use it to
// exercise error paths through the storage stack; for richer scenarios —
// rates, storms, permanent faults, latency spikes — install a FaultPlan.
func (d *Device) InjectReadFault(id FileID, idx int64, err error) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if _, dup := d.readFaults[pageKey{id, idx}]; !dup {
		d.faultsArmed.Add(1)
	}
	d.readFaults[pageKey{id, idx}] = err
}

// TotalPages returns the number of pages across all files (disk usage).
func (d *Device) TotalPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, f := range d.files {
		f.mu.RLock()
		total += int64(len(f.pages))
		f.mu.RUnlock()
	}
	return total
}
