package simdisk

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// FileID identifies a page file on a Device.
type FileID uint32

// InvalidFile is the zero FileID; no valid file ever has it.
const InvalidFile FileID = 0

// Common device errors.
var (
	// ErrNoSuchFile is returned for operations on unknown or deleted files.
	ErrNoSuchFile = errors.New("simdisk: no such file")
	// ErrOutOfRange is returned when a page index is past end of file.
	ErrOutOfRange = errors.New("simdisk: page index out of range")
	// ErrBadPageSize is returned when a write buffer is not PageSize bytes.
	ErrBadPageSize = errors.New("simdisk: page buffer must be exactly PageSize bytes")
)

// Stats aggregates device activity since the last Reset.
type Stats struct {
	PageReads    int64 // pages read from the platter (cache misses)
	PageWrites   int64 // pages written
	CacheHits    int64 // reads served by the buffer cache
	Seeks        int64 // non-sequential repositionings
	SeqPages     int64 // platter accesses that were sequential
	BytesRead    int64
	BytesWritten int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.CacheHits += o.CacheHits
	s.Seeks += o.Seeks
	s.SeqPages += o.SeqPages
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
}

// file is one page file stored entirely in memory.
type file struct {
	name  string
	pages [][]byte
}

// Device is a simulated disk: a set of page files, a cost model, a buffer
// cache and a simulated clock. All methods are safe for concurrent use,
// though the experiments (like the paper's) are single-threaded.
type Device struct {
	mu    sync.Mutex
	cost  CostModel
	clock time.Duration
	files map[FileID]*file
	next  FileID
	cache *lruCache
	stats Stats

	// sequential-run detection
	lastFile  FileID
	lastPage  int64
	lastValid bool

	// failure injection: pages that return an error on next platter read
	readFaults map[pageKey]error
}

// NewDevice creates a Device with the given cost model and buffer-cache
// capacity in pages. cacheCapacity <= 0 disables caching entirely.
func NewDevice(cost CostModel, cacheCapacity int) *Device {
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		cost:       cost,
		files:      make(map[FileID]*file),
		next:       1,
		cache:      newLRUCache(cacheCapacity),
		readFaults: make(map[pageKey]error),
	}
}

// NewDefaultDevice creates a Device with the paper's SAS cost model and a
// cache of cachePages pages.
func NewDefaultDevice(cachePages int) *Device {
	return NewDevice(DefaultCostModel(), cachePages)
}

// CreateFile allocates a new empty page file and returns its handle.
func (d *Device) CreateFile(name string) FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.files[id] = &file{name: name}
	return id
}

// DeleteFile removes a file, releasing its pages and cache entries. Deleting
// merge files under the space budget goes through here.
func (d *Device) DeleteFile(id FileID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	delete(d.files, id)
	d.cache.RemoveFile(id)
	if d.lastValid && d.lastFile == id {
		d.lastValid = false
	}
	return nil
}

// FileName returns the debug name a file was created with.
func (d *Device) FileName(id FileID) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	return f.name, nil
}

// NumPages returns the current length of the file in pages.
func (d *Device) NumPages(id FileID) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	return int64(len(f.pages)), nil
}

// ReadPage reads page idx of file id into buf (which must be PageSize
// bytes). A cached page pays CacheHit; otherwise the access pays Transfer,
// plus Seek if it does not continue the previous platter access.
func (d *Device) ReadPage(id FileID, idx int64, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadPageSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		return fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, len(f.pages))
	}
	key := pageKey{id, idx}
	if err, faulty := d.readFaults[key]; faulty {
		delete(d.readFaults, key)
		return err
	}
	if d.cache.Contains(key) {
		d.clock += d.cost.CacheHit
		d.stats.CacheHits++
	} else {
		d.chargePlatter(key)
		d.stats.PageReads++
		d.stats.BytesRead += PageSize
		d.cache.Insert(key)
	}
	copy(buf, f.pages[idx])
	return nil
}

// WritePage overwrites an existing page in place (partition refinement
// reuses the pages the old partition occupied). The write pays platter cost
// and refreshes the cache (write-through).
func (d *Device) WritePage(id FileID, idx int64, data []byte) error {
	if len(data) != PageSize {
		return ErrBadPageSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		return fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, len(f.pages))
	}
	key := pageKey{id, idx}
	d.chargePlatter(key)
	d.stats.PageWrites++
	d.stats.BytesWritten += PageSize
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages[idx] = page
	d.cache.Insert(key)
	return nil
}

// AppendPage appends data as a new page at the end of the file and returns
// its index. Appends to the file most recently touched at its tail are
// sequential.
func (d *Device) AppendPage(id FileID, data []byte) (int64, error) {
	if len(data) != PageSize {
		return 0, ErrBadPageSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	idx := int64(len(f.pages))
	key := pageKey{id, idx}
	d.chargePlatter(key)
	d.stats.PageWrites++
	d.stats.BytesWritten += PageSize
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages = append(f.pages, page)
	d.cache.Insert(key)
	return idx, nil
}

// ReadRun reads n consecutive pages starting at start into a single buffer
// of n*PageSize bytes. It is the sequential-scan primitive partitions and
// merge files use.
func (d *Device) ReadRun(id FileID, start, n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("simdisk: negative run length %d", n)
	}
	buf := make([]byte, n*PageSize)
	for i := int64(0); i < n; i++ {
		if err := d.ReadPage(id, start+i, buf[i*PageSize:(i+1)*PageSize]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// chargePlatter advances the simulated clock for one platter access to key,
// paying a seek unless the access continues the previous one. Callers hold
// d.mu.
func (d *Device) chargePlatter(key pageKey) {
	sequential := d.lastValid && d.lastFile == key.file && key.page == d.lastPage+1
	if sequential {
		d.stats.SeqPages++
	} else {
		d.clock += d.cost.Seek
		d.stats.Seeks++
	}
	d.clock += d.cost.Transfer
	d.lastFile, d.lastPage, d.lastValid = key.file, key.page, true
}

// Clock returns the simulated time elapsed since creation or the last
// ResetClock.
func (d *Device) Clock() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// ResetClock zeroes the simulated clock (stats are unaffected).
func (d *Device) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = 0
}

// AdvanceClock adds a CPU-side cost to the simulated clock. Engines use it
// to charge in-memory processing (e.g. intersection tests) so that CPU-bound
// phases are not free; the default experiments leave CPU costs at zero,
// matching the paper's disk-bound setting.
func (d *Device) AdvanceClock(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock += dt
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// DropCaches empties the buffer cache and forgets the head position, exactly
// like the paper's methodology of overwriting OS caches before each query.
func (d *Device) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache.Clear()
	d.lastValid = false
}

// CachedPages returns the number of pages currently cached.
func (d *Device) CachedPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.Len()
}

// SetCacheCapacity resizes the buffer cache (in pages).
func (d *Device) SetCacheCapacity(pages int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache.SetCapacity(pages)
}

// InjectReadFault arms a one-shot read error on (id, idx); the next platter
// read of that page returns err instead of data. Tests use it to exercise
// error paths through the storage stack.
func (d *Device) InjectReadFault(id FileID, idx int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readFaults[pageKey{id, idx}] = err
}

// TotalPages returns the number of pages across all files (disk usage).
func (d *Device) TotalPages() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, f := range d.files {
		total += int64(len(f.pages))
	}
	return total
}
