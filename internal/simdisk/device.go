package simdisk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// FileID identifies a page file on a Device.
type FileID uint32

// InvalidFile is the zero FileID; no valid file ever has it.
const InvalidFile FileID = 0

// Common device errors.
var (
	// ErrNoSuchFile is returned for operations on unknown or deleted files.
	ErrNoSuchFile = errors.New("simdisk: no such file")
	// ErrOutOfRange is returned when a page index is past end of file.
	ErrOutOfRange = errors.New("simdisk: page index out of range")
	// ErrBadPageSize is returned when a write buffer is not PageSize bytes.
	ErrBadPageSize = errors.New("simdisk: page buffer must be exactly PageSize bytes")
)

// Stats aggregates device activity since the last Reset.
type Stats struct {
	PageReads    int64 // pages read from the platter (cache misses)
	PageWrites   int64 // pages written
	CacheHits    int64 // reads served by the buffer cache
	Seeks        int64 // non-sequential repositionings
	SeqPages     int64 // platter accesses that were sequential
	BytesRead    int64
	BytesWritten int64
	CanceledOps  int64 // device operations aborted by context cancellation
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.CacheHits += o.CacheHits
	s.Seeks += o.Seeks
	s.SeqPages += o.SeqPages
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.CanceledOps += o.CanceledOps
}

// file is one page file stored entirely in memory. Its pages are guarded by
// a per-file RWMutex so parallel readers of the same file never serialize on
// device-wide state.
type file struct {
	name    string
	mu      sync.RWMutex
	pages   [][]byte
	deleted bool
}

// Device is a simulated disk: a set of page files, a cost model, a buffer
// cache and a simulated clock. All methods are safe for concurrent use, and
// the locking is fine-grained so parallel readers scale:
//
//   - the files map has its own RWMutex (file create/delete exclusive,
//     lookups shared);
//   - each file's pages have a per-file RWMutex (reads shared, writes and
//     appends exclusive per file);
//   - the buffer cache is a sharded LRU — cache hits contend only on one
//     shard's mutex, with per-shard hit counters aggregated on read;
//   - the simulated clock and the byte/page counters are atomics;
//   - only the platter head position (sequential-run detection) is a single
//     short mutex, serializing exactly the accesses a single-armed disk
//     serializes anyway: cache misses.
type Device struct {
	cost CostModel

	mu    sync.RWMutex // guards files map membership and id allocation
	files map[FileID]*file
	next  FileID

	clock atomic.Int64 // simulated elapsed nanoseconds
	cache *shardedCache

	// device counters (Stats), all atomics; CacheHits lives in the cache's
	// per-shard counters.
	pageReads    atomic.Int64
	pageWrites   atomic.Int64
	seeks        atomic.Int64
	seqPages     atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	canceledOps  atomic.Int64

	// platterMu guards the head position for sequential-run detection.
	platterMu sync.Mutex
	lastFile  FileID
	lastPage  int64
	lastValid bool

	// failure injection: pages that return an error on next platter read.
	// faultsArmed lets the hot path skip the mutex when no faults are set.
	faultMu     sync.Mutex
	faultsArmed atomic.Int32
	readFaults  map[pageKey]error

	// realTime holds the float64 bits of the real-time emulation scale
	// (0 = off). See SetRealTimeScale.
	realTime atomic.Uint64
}

// NewDevice creates a Device with the given cost model and buffer-cache
// capacity in pages. cacheCapacity <= 0 disables caching entirely.
func NewDevice(cost CostModel, cacheCapacity int) *Device {
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		cost:       cost,
		files:      make(map[FileID]*file),
		next:       1,
		cache:      newShardedCache(cacheCapacity),
		readFaults: make(map[pageKey]error),
	}
}

// NewDefaultDevice creates a Device with the paper's SAS cost model and a
// cache of cachePages pages.
func NewDefaultDevice(cachePages int) *Device {
	return NewDevice(DefaultCostModel(), cachePages)
}

// lookup resolves a file handle under the shared map lock.
func (d *Device) lookup(id FileID) (*file, error) {
	d.mu.RLock()
	f, ok := d.files[id]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	return f, nil
}

// CreateFile allocates a new empty page file and returns its handle.
func (d *Device) CreateFile(name string) FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.files[id] = &file{name: name}
	return id
}

// DeleteFile removes a file, releasing its pages and cache entries. Deleting
// merge files under the space budget goes through here.
func (d *Device) DeleteFile(id FileID) error {
	d.mu.Lock()
	f, ok := d.files[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	delete(d.files, id)
	d.mu.Unlock()
	// Mark the struct deleted under its write lock: in-flight readers that
	// resolved the handle before the map removal either finish first (and
	// any cache entries they insert are purged below) or observe the flag
	// and fail — no page of a deleted file can linger in the cache.
	f.mu.Lock()
	f.deleted = true
	f.mu.Unlock()
	d.cache.RemoveFile(id)
	d.platterMu.Lock()
	if d.lastValid && d.lastFile == id {
		d.lastValid = false
	}
	d.platterMu.Unlock()
	return nil
}

// FileName returns the debug name a file was created with.
func (d *Device) FileName(id FileID) (string, error) {
	f, err := d.lookup(id)
	if err != nil {
		return "", err
	}
	return f.name, nil
}

// NumPages returns the current length of the file in pages.
func (d *Device) NumPages(id FileID) (int64, error) {
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.RLock()
	n := int64(len(f.pages))
	f.mu.RUnlock()
	return n, nil
}

// readPage is ReadPage without the real-time emulation: it returns the
// charged simulated duration so callers (ReadRun) can aggregate sleeps. The
// context (nil allowed) is checked before any charge, so a read that aborts
// here has cost nothing — ReadRunCtx relies on this to stop charging exactly
// at the page boundary where cancellation was observed.
func (d *Device) readPage(ctx context.Context, id FileID, idx int64, buf []byte) (time.Duration, error) {
	if err := d.checkCtx(ctx); err != nil {
		return 0, err
	}
	if len(buf) != PageSize {
		return 0, ErrBadPageSize
	}
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.RLock()
	if f.deleted {
		f.mu.RUnlock()
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		n := len(f.pages)
		f.mu.RUnlock()
		return 0, fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, n)
	}
	key := pageKey{id, idx}
	if d.faultsArmed.Load() > 0 {
		if err := d.takeFault(key); err != nil {
			f.mu.RUnlock()
			return 0, err
		}
	}
	var dt time.Duration
	if d.cache.Touch(key) {
		dt = d.cost.CacheHit
		d.clock.Add(int64(dt))
	} else {
		dt = d.chargePlatter(key)
		d.pageReads.Add(1)
		d.bytesRead.Add(PageSize)
	}
	copy(buf, f.pages[idx])
	f.mu.RUnlock()
	return dt, nil
}

// ReadPage reads page idx of file id into buf (which must be PageSize
// bytes). A cached page pays CacheHit; otherwise the access pays Transfer,
// plus Seek if it does not continue the previous platter access. Parallel
// reads of cached pages proceed concurrently.
func (d *Device) ReadPage(id FileID, idx int64, buf []byte) error {
	dt, err := d.readPage(nil, id, idx, buf)
	if err != nil {
		return err
	}
	d.emulate(dt)
	return nil
}

// WritePage overwrites an existing page in place (partition refinement
// reuses the pages the old partition occupied). The write pays platter cost
// and refreshes the cache (write-through).
func (d *Device) WritePage(id FileID, idx int64, data []byte) error {
	if len(data) != PageSize {
		return ErrBadPageSize
	}
	f, err := d.lookup(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.deleted {
		f.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	if idx < 0 || idx >= int64(len(f.pages)) {
		n := len(f.pages)
		f.mu.Unlock()
		return fmt.Errorf("%w: file %d page %d of %d", ErrOutOfRange, id, idx, n)
	}
	key := pageKey{id, idx}
	dt := d.chargePlatter(key)
	d.pageWrites.Add(1)
	d.bytesWritten.Add(PageSize)
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages[idx] = page
	// Insert under f.mu so DeleteFile's purge (which takes f.mu first)
	// cannot interleave and leave a dead key cached.
	d.cache.Insert(key)
	f.mu.Unlock()
	d.emulate(dt)
	return nil
}

// AppendPage appends data as a new page at the end of the file and returns
// its index. Appends to the file most recently touched at its tail are
// sequential.
func (d *Device) AppendPage(id FileID, data []byte) (int64, error) {
	if len(data) != PageSize {
		return 0, ErrBadPageSize
	}
	f, err := d.lookup(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.deleted {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFile, id)
	}
	idx := int64(len(f.pages))
	key := pageKey{id, idx}
	dt := d.chargePlatter(key)
	d.pageWrites.Add(1)
	d.bytesWritten.Add(PageSize)
	page := make([]byte, PageSize)
	copy(page, data)
	f.pages = append(f.pages, page)
	d.cache.Insert(key) // under f.mu; see WritePage
	f.mu.Unlock()
	d.emulate(dt)
	return idx, nil
}

// ReadRun reads n consecutive pages starting at start into a single buffer
// of n*PageSize bytes. It is the sequential-scan primitive partitions and
// merge files use. Real-time emulation sleeps once for the whole run, not
// per page, so OS sleep granularity does not inflate sequential scans.
func (d *Device) ReadRun(id FileID, start, n int64) ([]byte, error) {
	return d.ReadRunCtx(nil, id, start, n)
}

// chargePlatter advances the simulated clock for one platter access to key,
// paying a seek unless the access continues the previous one. Only the head
// position is under the platter mutex; clock and counters are atomics. It
// returns the charged duration.
func (d *Device) chargePlatter(key pageKey) time.Duration {
	d.platterMu.Lock()
	sequential := d.lastValid && d.lastFile == key.file && key.page == d.lastPage+1
	d.lastFile, d.lastPage, d.lastValid = key.file, key.page, true
	d.platterMu.Unlock()
	dt := d.cost.Transfer
	if sequential {
		d.seqPages.Add(1)
	} else {
		dt += d.cost.Seek
		d.seeks.Add(1)
	}
	d.clock.Add(int64(dt))
	return dt
}

// takeFault consumes an armed one-shot read fault for key, if any.
func (d *Device) takeFault(key pageKey) error {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	err, ok := d.readFaults[key]
	if !ok {
		return nil
	}
	delete(d.readFaults, key)
	d.faultsArmed.Add(-1)
	return err
}

// Clock returns the simulated time elapsed since creation or the last
// ResetClock.
func (d *Device) Clock() time.Duration {
	return time.Duration(d.clock.Load())
}

// ResetClock zeroes the simulated clock (stats are unaffected).
func (d *Device) ResetClock() {
	d.clock.Store(0)
}

// AdvanceClock adds a CPU-side cost to the simulated clock. Engines use it
// to charge in-memory processing (e.g. intersection tests) so that CPU-bound
// phases are not free; the default experiments leave CPU costs at zero,
// matching the paper's disk-bound setting.
func (d *Device) AdvanceClock(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.clock.Add(int64(dt))
	d.emulate(dt)
}

// SetRealTimeScale turns on real-time emulation: every charged simulated
// duration additionally sleeps scale times that duration in wall-clock time
// (outside all locks), so concurrent queries genuinely overlap their
// simulated I/O waits the way they would overlap device latency on real
// hardware. scale <= 0 (the default) disables emulation. Sub-microsecond
// scaled costs (cache hits) never sleep.
func (d *Device) SetRealTimeScale(scale float64) {
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 0
	}
	d.realTime.Store(math.Float64bits(scale))
}

// RealTimeScale returns the current real-time emulation scale (0 = off).
func (d *Device) RealTimeScale() float64 {
	return math.Float64frombits(d.realTime.Load())
}

// emulate sleeps the scaled wall-clock equivalent of a charged simulated
// duration when real-time emulation is on. Called with no locks held.
func (d *Device) emulate(dt time.Duration) {
	_ = d.emulateCtx(nil, dt)
}

// emulateCtx is emulate with an abortable wait: when ctx (nil allowed) is
// canceled mid-sleep the wait ends immediately and the cancellation error is
// returned, so a real-time emulated device never holds an abandoned query
// hostage for the remainder of its simulated latency. The simulated clock
// was charged before the sleep either way — the I/O itself happened; only
// the wall-clock wait is cut short. Called with no locks held.
func (d *Device) emulateCtx(ctx context.Context, dt time.Duration) error {
	bits := d.realTime.Load()
	if bits == 0 || dt <= 0 {
		return nil
	}
	ns := float64(dt) * math.Float64frombits(bits)
	if ns < 1000 { // below timer resolution; cache hits are meant to be free
		return nil
	}
	if ctx == nil {
		time.Sleep(time.Duration(ns))
		return nil
	}
	timer := time.NewTimer(time.Duration(ns))
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		d.canceledOps.Add(1)
		return Canceled(ctx.Err())
	}
}

// Stats returns a snapshot of the device counters, aggregating the cache's
// per-shard hit counters. Under concurrent load the snapshot is a consistent
// sum of per-counter values, not an instantaneous cross-counter cut.
func (d *Device) Stats() Stats {
	return Stats{
		PageReads:    d.pageReads.Load(),
		PageWrites:   d.pageWrites.Load(),
		CacheHits:    d.cache.Hits(),
		Seeks:        d.seeks.Load(),
		SeqPages:     d.seqPages.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		CanceledOps:  d.canceledOps.Load(),
	}
}

// ResetStats zeroes the device counters.
func (d *Device) ResetStats() {
	d.pageReads.Store(0)
	d.pageWrites.Store(0)
	d.seeks.Store(0)
	d.seqPages.Store(0)
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.canceledOps.Store(0)
	d.cache.ResetHits()
}

// DropCaches empties the buffer cache and forgets the head position, exactly
// like the paper's methodology of overwriting OS caches before each query.
func (d *Device) DropCaches() {
	d.cache.Clear()
	d.platterMu.Lock()
	d.lastValid = false
	d.platterMu.Unlock()
}

// CachedPages returns the number of pages currently cached.
func (d *Device) CachedPages() int {
	return d.cache.Len()
}

// SetCacheCapacity resizes the buffer cache (in pages).
func (d *Device) SetCacheCapacity(pages int) {
	d.cache.SetCapacity(pages)
}

// InjectReadFault arms a one-shot read error on (id, idx); the next platter
// read of that page returns err instead of data. Tests use it to exercise
// error paths through the storage stack.
func (d *Device) InjectReadFault(id FileID, idx int64, err error) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if _, dup := d.readFaults[pageKey{id, idx}]; !dup {
		d.faultsArmed.Add(1)
	}
	d.readFaults[pageKey{id, idx}] = err
}

// TotalPages returns the number of pages across all files (disk usage).
func (d *Device) TotalPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, f := range d.files {
		f.mu.RLock()
		total += int64(len(f.pages))
		f.mu.RUnlock()
	}
	return total
}
