package simdisk

import (
	"sync"
	"sync/atomic"
)

// Sharding parameters. A shard is only worth its mutex when it holds a
// meaningful slice of the cache, so the shard count grows with capacity:
// capacity < 2*minShardPages keeps the single global LRU (bit-for-bit the
// pre-sharding behaviour, which the small-cache tests pin down), while large
// caches fan out to up to maxCacheShards independently locked LRUs.
const (
	maxCacheShards = 16 // power of two; shard index is hash & (n-1)
	minShardPages  = 128
)

// shardCount returns the number of shards (a power of two) for a capacity.
func shardCount(capacity int) int {
	n := 1
	for n < maxCacheShards && capacity >= 2*n*minShardPages {
		n *= 2
	}
	return n
}

// cacheShard is one independently locked slice of the page cache.
type cacheShard struct {
	mu  sync.Mutex
	lru *lruCache
}

// hitCounter is a cache-line-padded counter so that per-shard hit accounting
// from parallel readers does not false-share.
type hitCounter struct {
	n atomic.Int64
	_ [56]byte
}

// shardedCache is the device's buffer cache: an LRU set of page keys split
// into shards keyed by a hash of the pageKey, so cache hits from parallel
// readers contend only on their shard's mutex instead of serializing on one
// global lock. Hit counts are kept in per-shard counters and aggregated on
// read (Stats), never on the hot path.
//
// Eviction is per shard: each shard runs LRU over its own slice of the
// capacity. With a uniform key hash this approximates global LRU closely
// while keeping eviction decisions lock-local.
type shardedCache struct {
	mu     sync.RWMutex // guards the shards slice (rebuilt on SetCapacity)
	shards []*cacheShard
	hits   [maxCacheShards]hitCounter // indexed by hash, fixed across rebuilds
}

func newShardedCache(capacity int) *shardedCache {
	c := &shardedCache{}
	c.buildLocked(capacity)
	return c
}

// buildLocked allocates the shard array for capacity. Callers hold c.mu (or
// have exclusive access during construction).
func (c *shardedCache) buildLocked(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	n := shardCount(capacity)
	base, extra := capacity/n, capacity%n
	shards := make([]*cacheShard, n)
	for i := range shards {
		capi := base
		if i < extra {
			capi++
		}
		shards[i] = &cacheShard{lru: newLRUCache(capi)}
	}
	c.shards = shards
}

// hash mixes a pageKey into a well-distributed 64-bit value (splitmix64
// finalizer over the file/page pair).
func (c *shardedCache) hash(key pageKey) uint64 {
	h := uint64(key.page)*0x9E3779B97F4A7C15 ^ uint64(key.file)*0xBF58476D1CE4E5B9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// Touch is the read path's single cache interaction: it reports whether key
// was cached (marking it most recently used and counting the hit) and
// inserts it on a miss, all under one shard lock.
func (c *shardedCache) Touch(key pageKey) bool {
	h := c.hash(key)
	c.mu.RLock()
	s := c.shards[h&uint64(len(c.shards)-1)]
	s.mu.Lock()
	hit := s.lru.Contains(key)
	if !hit {
		s.lru.Insert(key)
	}
	s.mu.Unlock()
	c.mu.RUnlock()
	if hit {
		c.hits[h&uint64(maxCacheShards-1)].n.Add(1)
	}
	return hit
}

// Insert adds key as most recently used in its shard (write-through path).
func (c *shardedCache) Insert(key pageKey) {
	h := c.hash(key)
	c.mu.RLock()
	s := c.shards[h&uint64(len(c.shards)-1)]
	s.mu.Lock()
	s.lru.Insert(key)
	s.mu.Unlock()
	c.mu.RUnlock()
}

// RemoveFile drops every cached page of file f from all shards.
func (c *shardedCache) RemoveFile(f FileID) {
	c.mu.RLock()
	for _, s := range c.shards {
		s.mu.Lock()
		s.lru.RemoveFile(f)
		s.mu.Unlock()
	}
	c.mu.RUnlock()
}

// Clear empties every shard (the paper's cache drop). Hit counters are
// untouched; they are statistics, not contents.
func (c *shardedCache) Clear() {
	c.mu.RLock()
	for _, s := range c.shards {
		s.mu.Lock()
		s.lru.Clear()
		s.mu.Unlock()
	}
	c.mu.RUnlock()
}

// Len returns the cached page count across shards.
func (c *shardedCache) Len() int {
	n := 0
	c.mu.RLock()
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	c.mu.RUnlock()
	return n
}

// Hits aggregates the per-shard hit counters.
func (c *shardedCache) Hits() int64 {
	var n int64
	for i := range c.hits {
		n += c.hits[i].n.Load()
	}
	return n
}

// ResetHits zeroes the per-shard hit counters.
func (c *shardedCache) ResetHits() {
	for i := range c.hits {
		c.hits[i].n.Store(0)
	}
}

// SetCapacity resizes the cache. When the shard count is unchanged the
// resize stays in place (exact LRU eviction order within each shard);
// otherwise the shard array is rebuilt and surviving keys are re-inserted in
// per-shard recency order.
func (c *shardedCache) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if shardCount(capacity) == len(c.shards) {
		n := len(c.shards)
		base, extra := capacity/n, capacity%n
		for i, s := range c.shards {
			capi := base
			if i < extra {
				capi++
			}
			s.mu.Lock()
			s.lru.SetCapacity(capi)
			s.mu.Unlock()
		}
		return
	}
	old := c.shards
	c.buildLocked(capacity)
	// Re-insert surviving keys, least recent first, so recency is preserved
	// within each old shard.
	for _, s := range old {
		s.mu.Lock()
		for n := s.lru.tail; n != nil; n = n.prev {
			h := c.hash(n.key)
			c.shards[h&uint64(len(c.shards)-1)].lru.Insert(n.key)
		}
		s.mu.Unlock()
	}
}
