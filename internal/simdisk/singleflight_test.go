package simdisk

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// sfTestDevice builds a device with one file of n distinct pages and
// sharing enabled.
func sfTestDevice(t *testing.T, n int, cache int) (*Device, FileID) {
	t.Helper()
	d := NewDevice(DefaultCostModel(), cache)
	d.SetShareReads(true)
	id := d.CreateFile("shared")
	page := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		for j := range page {
			page[j] = byte(i + j)
		}
		if _, err := d.AppendPage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetClock()
	d.ResetStats()
	d.DropCaches()
	return d, id
}

// inflightRuns reports how many run reads are currently registered on id.
func (d *Device) inflightRuns(id FileID) int {
	d.sfMu.Lock()
	defer d.sfMu.Unlock()
	return len(d.sfInflight[id])
}

// TestSingleFlightChargesOneRead is the charge-regression contract: two
// concurrent reads of the same run must charge the simulated clock and the
// page counters exactly one read's worth — the attached read is free.
// Determinism: the leader's real-time emulation sleep keeps its registration
// in flight while the waiter attaches (the waiter only starts after the
// registration is observed).
func TestSingleFlightChargesOneRead(t *testing.T) {
	const pages = 64
	d, id := sfTestDevice(t, pages, 0)
	cost := d.cost
	// One cold run: a seek plus pages transfers. Scale the emulation so the
	// leader stays in flight for a comfortable wall-clock window.
	want := cost.Seek + time.Duration(pages)*cost.Transfer
	d.SetRealTimeScale(float64(250*time.Millisecond) / float64(want))

	var leaderBuf, waiterBuf []byte
	var leaderErr, waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderBuf, leaderErr = d.ReadRun(id, 0, pages)
	}()
	// Wait until the leader's run is registered before starting the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for d.inflightRuns(id) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never registered its in-flight run")
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterBuf, waiterErr = d.ReadRun(id, 8, 16) // contained sub-range
	}()
	wg.Wait()
	if leaderErr != nil || waiterErr != nil {
		t.Fatalf("reads failed: leader %v waiter %v", leaderErr, waiterErr)
	}
	if !bytes.Equal(waiterBuf, leaderBuf[8*PageSize:24*PageSize]) {
		t.Fatal("attached read returned different bytes than the leader's range")
	}

	st := d.Stats()
	if st.CoalescedReads != 1 || st.CoalescedPages != 16 {
		t.Fatalf("coalescing counters = %d reads / %d pages, want 1 / 16", st.CoalescedReads, st.CoalescedPages)
	}
	if st.PageReads != pages {
		t.Fatalf("PageReads = %d, want exactly one run's %d", st.PageReads, pages)
	}
	if st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d, want 0 (cache disabled)", st.CacheHits)
	}
	if got := d.Clock(); got != want {
		t.Fatalf("Clock = %v, want exactly one read's charge %v", got, want)
	}
}

// TestSingleFlightDisjointRangesDoNotCoalesce pins that only genuinely
// overlapping (contained) ranges attach: serial reads of disjoint runs each
// pay their own I/O even with sharing on.
func TestSingleFlightDisjointRangesDoNotCoalesce(t *testing.T) {
	d, id := sfTestDevice(t, 32, 0)
	if _, err := d.ReadRun(id, 0, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadRun(id, 16, 16); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CoalescedReads != 0 || st.PageReads != 32 {
		t.Fatalf("serial disjoint reads coalesced: %+v", st)
	}
}

// TestSingleFlightOffBitForBit: with sharing off (the default), the device
// behaves exactly as before — no coalescing counters, every read charged.
func TestSingleFlightOffBitForBit(t *testing.T) {
	d, id := sfTestDevice(t, 16, 0)
	d.SetShareReads(false)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.ReadRun(id, 0, 16); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := d.Stats()
	if st.CoalescedReads != 0 || st.CoalescedPages != 0 {
		t.Fatalf("sharing off but coalescing counted: %+v", st)
	}
	if st.PageReads != 4*16 {
		t.Fatalf("PageReads = %d, want 64 (4 independent reads)", st.PageReads)
	}
}

// TestSingleFlightWaiterCancellation: a waiter whose context dies while
// attached returns a cancellation error; the leader's read is unaffected.
func TestSingleFlightWaiterCancellation(t *testing.T) {
	const pages = 64
	d, id := sfTestDevice(t, pages, 0)
	want := d.cost.Seek + time.Duration(pages)*d.cost.Transfer
	d.SetRealTimeScale(float64(300*time.Millisecond) / float64(want))

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, leaderErr = d.ReadRun(id, 0, pages)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.inflightRuns(id) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err := d.ReadRunCtx(ctx, id, 0, 8)
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled waiter returned %v, want ErrCanceled", err)
	}
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("leader failed after waiter cancellation: %v", leaderErr)
	}
	if st := d.Stats(); st.CoalescedReads != 0 {
		t.Fatalf("canceled waiter still counted as coalesced: %+v", st)
	}
}

// TestSingleFlightLeaderFailureFallsBack: when the leader's read fails (an
// injected fault), a concurrent reader of a sub-range must still succeed —
// whether it attached to the failing leader (and fell back to its own read)
// or never overlapped it. The fault lands on a page only the leader's range
// covers, so the outcome is deterministic for both interleavings.
func TestSingleFlightLeaderFailureFallsBack(t *testing.T) {
	const pages = 32
	d, id := sfTestDevice(t, pages, 0)
	bang := errors.New("bang")
	d.InjectReadFault(id, pages-1, bang) // leader trips at its last page

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, leaderErr = d.ReadRun(id, 0, pages)
	}()
	buf, err := d.ReadRun(id, 0, 8)
	wg.Wait()
	if !errors.Is(leaderErr, bang) {
		t.Fatalf("leader error = %v, want the injected fault", leaderErr)
	}
	if err != nil {
		t.Fatalf("concurrent sub-range read failed alongside the leader: %v", err)
	}
	if len(buf) != 8*PageSize {
		t.Fatalf("sub-range read returned %d bytes, want %d", len(buf), 8*PageSize)
	}
}

// TestSingleFlightFailedLeaderSingleRetry is the herd-regression contract
// at the device layer: when a leader's read fails, its waiters must loop
// back through the coalescing path so exactly one retry read is charged —
// not one independent readRunDirect per waiter. A doomed run is registered
// by hand and a herd parks on it; failing it (deregister, then publish)
// wakes the herd, mutex serialization picks one retry leader, and the
// real-time stretched retry read holds its registration open so the rest
// attach to it.
func TestSingleFlightFailedLeaderSingleRetry(t *testing.T) {
	const pages = 8
	d, id := sfTestDevice(t, pages, 0)
	want := d.cost.Seek + time.Duration(pages)*d.cost.Transfer
	d.SetRealTimeScale(float64(250*time.Millisecond) / float64(want))

	doomed := &inflightRun{start: 0, n: pages, done: make(chan struct{})}
	d.sfMu.Lock()
	d.sfInflight[id] = append(d.sfInflight[id], doomed)
	d.sfMu.Unlock()

	const waiters = 4
	bufs := make([][]byte, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs[g], errs[g] = d.ReadRun(id, 0, pages)
		}()
	}

	// Fail the doomed leader the way a real one publishes: deregister under
	// the lock, then close done. (A waiter that never parked on it simply
	// finds the retry leader's registration instead — same coalescing.)
	doomed.err = errors.New("bang")
	d.sfMu.Lock()
	delete(d.sfInflight, id)
	d.sfMu.Unlock()
	close(doomed.done)
	wg.Wait()

	for g := 0; g < waiters; g++ {
		if errs[g] != nil {
			t.Fatalf("waiter %d inherited the dead leader's outcome: %v", g, errs[g])
		}
		for p := int64(0); p < pages; p++ {
			if bufs[g][p*PageSize] != byte(p) || bufs[g][p*PageSize+1] != byte(p+1) {
				t.Fatalf("waiter %d: page %d bytes corrupted", g, p)
			}
		}
	}
	st := d.Stats()
	if st.PageReads != pages {
		t.Fatalf("PageReads = %d, want exactly one retry read's %d (thundering herd)",
			st.PageReads, pages)
	}
	if st.CoalescedReads != waiters-1 || st.CoalescedPages != (waiters-1)*pages {
		t.Fatalf("coalescing counters = %d reads / %d pages, want %d / %d",
			st.CoalescedReads, st.CoalescedPages, waiters-1, (waiters-1)*pages)
	}
	if d.inflightRuns(id) != 0 {
		t.Fatal("in-flight registry leaked entries")
	}
}

// TestSingleFlightConcurrentStorm hammers one file from many goroutines
// with overlapping and disjoint ranges under the race detector and checks
// the byte contents of every read.
func TestSingleFlightConcurrentStorm(t *testing.T) {
	const pages = 64
	d, id := sfTestDevice(t, pages, 128)
	d.SetRealTimeScale(0.00001)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				start := int64((g*7 + i*3) % (pages - 8))
				n := int64(1 + (g+i)%8)
				buf, err := d.ReadRun(id, start, n)
				if err != nil {
					t.Errorf("goroutine %d read %d: %v", g, start, err)
					return
				}
				for p := int64(0); p < n; p++ {
					idx := start + p
					if buf[p*PageSize] != byte(idx) || buf[p*PageSize+1] != byte(idx+1) {
						t.Errorf("goroutine %d: page %d bytes corrupted", g, idx)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if d.inflightRuns(id) != 0 {
		t.Fatal("in-flight registry leaked entries")
	}
}
