package simdisk

import (
	"bytes"
	"errors"
	"testing"
)

func stripeArray(t *testing.T, devices int, chunk int64) *DeviceArray {
	t.Helper()
	a := NewDeviceArray(DefaultCostModel(), 64, devices, 1, PageStripe(chunk))
	t.Cleanup(func() { a.Close() })
	return a
}

func pageOf(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestPageStripeRoundTrip pins the basic contract: appends return dense
// global indices, every page reads back byte-identical via ReadPage, and
// the chunk mapping actually spreads the file across all members.
func TestPageStripeRoundTrip(t *testing.T) {
	const devices, chunk, pages = 3, 2, 13
	a := stripeArray(t, devices, chunk)
	id := a.CreateFile("striped.raw")
	if id == InvalidFile {
		t.Fatal("CreateFile returned InvalidFile")
	}
	if id&stripeTag == 0 {
		t.Fatalf("striped id %d missing the stripe tag", id)
	}
	for i := 0; i < pages; i++ {
		idx, err := a.AppendPage(id, pageOf(byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != int64(i) {
			t.Fatalf("append %d returned global index %d", i, idx)
		}
	}
	if n, err := a.NumPages(id); err != nil || n != pages {
		t.Fatalf("NumPages = %d, %v; want %d", n, err, pages)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		if err := a.ReadPage(id, int64(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pageOf(byte(i))) {
			t.Fatalf("page %d read back wrong content %d", i, buf[0])
		}
	}
	// 13 pages in chunks of 2 over 3 members: every member holds a share.
	for m, dev := range a.Members() {
		if dev.TotalPages() == 0 {
			t.Fatalf("member %d holds no pages of the striped file", m)
		}
	}
	if name, err := a.FileName(id); err != nil || name != "striped.raw" {
		t.Fatalf("FileName = %q, %v", name, err)
	}
}

// TestPageStripeReadRunCrossesChunks pins the scatter/gather path: a run
// spanning several chunks (with partial first and last chunks) reassembles
// into exactly the bytes a page-by-page read returns.
func TestPageStripeReadRunCrossesChunks(t *testing.T) {
	const devices, chunk, pages = 2, 4, 40
	a := stripeArray(t, devices, chunk)
	id := a.CreateFile("run.raw")
	for i := 0; i < pages; i++ {
		if _, err := a.AppendPage(id, pageOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, run := range [][2]int64{{0, 40}, {3, 9}, {5, 1}, {7, 25}, {36, 4}, {0, 0}} {
		start, n := run[0], run[1]
		got, err := a.ReadRun(id, start, n)
		if err != nil {
			t.Fatalf("ReadRun(%d,%d): %v", start, n, err)
		}
		want := make([]byte, 0, n*PageSize)
		for p := start; p < start+n; p++ {
			want = append(want, pageOf(byte(p))...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadRun(%d,%d) reassembled wrong bytes", start, n)
		}
	}
	if _, err := a.ReadRun(id, 38, 4); err == nil {
		t.Fatal("ReadRun past EOF succeeded")
	}
}

// TestPageStripeWriteAndDelete pins in-place overwrite routing and the
// all-members delete.
func TestPageStripeWriteAndDelete(t *testing.T) {
	a := stripeArray(t, 3, 2)
	id := a.CreateFile("w.raw")
	for i := 0; i < 9; i++ {
		if _, err := a.AppendPage(id, pageOf(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.WritePage(id, 5, pageOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := a.ReadPage(id, 5, buf); err != nil || buf[0] != 0xAB {
		t.Fatalf("overwritten page 5 reads %d, %v", buf[0], err)
	}
	if err := a.ReadPage(id, 4, buf); err != nil || buf[0] != 0 {
		t.Fatalf("neighbour page 4 disturbed: %d, %v", buf[0], err)
	}
	if err := a.DeleteFile(id); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NumPages(id); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("NumPages after delete: %v, want ErrNoSuchFile", err)
	}
	for m, dev := range a.Members() {
		if dev.TotalPages() != 0 {
			t.Fatalf("member %d still holds pages after delete", m)
		}
	}
}

// TestPageStripeFaultInjection pins global-page fault routing: a fault
// armed on a global index fires on the read of exactly that page.
func TestPageStripeFaultInjection(t *testing.T) {
	a := stripeArray(t, 2, 2)
	id := a.CreateFile("f.raw")
	for i := 0; i < 8; i++ {
		if _, err := a.AppendPage(id, pageOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	a.InjectReadFault(id, 6, boom)
	buf := make([]byte, PageSize)
	if err := a.ReadPage(id, 5, buf); err != nil {
		t.Fatalf("unfaulted page errored: %v", err)
	}
	if err := a.ReadPage(id, 6, buf); !errors.Is(err, boom) {
		t.Fatalf("faulted page 6: %v, want boom", err)
	}
	if err := a.ReadPage(id, 6, buf); err != nil {
		t.Fatalf("one-shot fault did not clear: %v", err)
	}
}
