package simdisk

import (
	"errors"
	"testing"
	"time"
)

// TestArrayPlacementRoundRobin checks the stateful striping policy and the
// FileID encoding round-trip.
func TestArrayPlacementRoundRobin(t *testing.T) {
	a := NewDeviceArray(DefaultCostModel(), 64, 3, 1, RoundRobin())
	var members []int
	for i := 0; i < 6; i++ {
		id := a.CreateFile("f")
		members = append(members, a.MemberOf(id))
		if name, err := a.FileName(id); err != nil || name != "f" {
			t.Fatalf("FileName(%d) = %q, %v", id, name, err)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("round-robin placement = %v, want %v", members, want)
		}
	}
}

// TestArrayPlacementAffinity checks that files of one group co-locate and
// the policy is deterministic.
func TestArrayPlacementAffinity(t *testing.T) {
	a := NewDeviceArray(DefaultCostModel(), 64, 4, 1, GroupAffinity())
	g1a := a.CreateFileInGroup("ds3.raw", "ds3")
	g1b := a.CreateFileInGroup("ds3.raw.octree", "ds3")
	g1c := a.CreateFileInGroup("merge:3|5|7", "ds3")
	if m := a.MemberOf(g1a); a.MemberOf(g1b) != m || a.MemberOf(g1c) != m {
		t.Fatalf("group ds3 split across members %d/%d/%d",
			a.MemberOf(g1a), a.MemberOf(g1b), a.MemberOf(g1c))
	}
	// Different groups must be able to land elsewhere (spot-check that at
	// least two of a handful of groups differ — all-on-one would defeat
	// striping).
	seen := map[int]bool{}
	for _, g := range []string{"ds0", "ds1", "ds2", "ds3", "ds4", "ds5", "ds6", "ds7"} {
		seen[a.MemberOf(a.CreateFileInGroup(g+".raw", g))] = true
	}
	if len(seen) < 2 {
		t.Fatalf("affinity policy placed 8 groups on %d member(s)", len(seen))
	}
}

// TestArrayFileOps drives the whole Storage surface through an array and
// cross-checks against per-member state.
func TestArrayFileOps(t *testing.T) {
	a := NewDeviceArray(DefaultCostModel(), 64, 2, 2, RoundRobin())
	f := a.CreateFile("data")
	idx, err := a.AppendPage(f, page(7))
	if err != nil || idx != 0 {
		t.Fatalf("AppendPage = %d, %v", idx, err)
	}
	if _, err := a.AppendPage(f, page(8)); err != nil {
		t.Fatal(err)
	}
	if n, err := a.NumPages(f); err != nil || n != 2 {
		t.Fatalf("NumPages = %d, %v", n, err)
	}
	if err := a.WritePage(f, 1, page(9)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := a.ReadPage(f, 1, buf); err != nil || buf[0] != 9 {
		t.Fatalf("ReadPage: %v, buf[0]=%d", err, buf[0])
	}
	run, err := a.ReadRun(f, 0, 2)
	if err != nil || run[0] != 7 || run[PageSize] != 9 {
		t.Fatalf("ReadRun: %v", err)
	}
	if total := a.TotalPages(); total != 2 {
		t.Fatalf("TotalPages = %d, want 2", total)
	}
	if err := a.DeleteFile(f); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadPage(f, 0, buf); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("read of deleted file: %v, want ErrNoSuchFile", err)
	}
	if err := a.ReadPage(InvalidFile, 0, buf); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("read of InvalidFile: %v, want ErrNoSuchFile", err)
	}
}

// TestArrayStatsAndClock checks that Stats sums members while Clock takes
// the critical path, and that resets and drops fan out to every member.
func TestArrayStatsAndClock(t *testing.T) {
	cost := CostModel{Seek: 10 * time.Millisecond, Transfer: time.Millisecond}
	a := NewDeviceArray(cost, 0, 2, 1, RoundRobin())
	f0 := a.CreateFile("m0") // member 0
	f1 := a.CreateFile("m1") // member 1
	for p := 0; p < 3; p++ {
		if _, err := a.AppendPage(f0, page(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.AppendPage(f1, page(2)); err != nil {
		t.Fatal(err)
	}
	a.ResetClock()
	a.ResetStats()
	buf := make([]byte, PageSize)
	for i := int64(0); i < 3; i++ {
		if err := a.ReadPage(f0, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.ReadPage(f1, 0, buf); err != nil {
		t.Fatal(err)
	}
	// Member 0: seek + 3 transfers. Member 1: seek + 1 transfer. The array
	// clock is the busier member; the stats are the sum of both.
	if want := cost.Seek + 3*cost.Transfer; a.Clock() != want {
		t.Fatalf("array Clock = %v, want critical path %v", a.Clock(), want)
	}
	s := a.Stats()
	if s.PageReads != 4 || s.Seeks != 2 || s.SeqPages != 2 {
		t.Fatalf("array Stats = %+v, want 4 reads, 2 seeks, 2 seq", s)
	}
	per := a.DeviceStats()
	if len(per) != 2 || per[0].PageReads != 3 || per[1].PageReads != 1 {
		t.Fatalf("DeviceStats = %+v", per)
	}

	a.ResetStats()
	if s := a.Stats(); s.PageReads != 0 || s.Seeks != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
	a.ResetClock()
	if a.Clock() != 0 {
		t.Fatalf("ResetClock left %v", a.Clock())
	}
}

// TestArrayDropCachesEveryMemberChannel is the array half of the DropCaches
// regression: after a drop, the first read on every channel of every member
// pays a seek.
func TestArrayDropCachesEveryMemberChannel(t *testing.T) {
	a := NewDeviceArray(DefaultCostModel(), 128, 2, 2, RoundRobin())
	// One file per member per channel, 3 pages each.
	files := make(map[[2]int]FileID)
	for i := 0; len(files) < 4 && i < 128; i++ {
		id := a.CreateFile("f")
		dev, local := a.decode(id)
		ci := 0
		if dev.channelOf(local) == &dev.channels[1] {
			ci = 1
		}
		key := [2]int{a.MemberOf(id), ci}
		if _, dup := files[key]; dup {
			if err := a.DeleteFile(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		files[key] = id
		for p := 0; p < 3; p++ {
			if _, err := dev.AppendPage(local, page(byte(p))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(files) != 4 {
		t.Fatal("could not cover every (member, channel) pair")
	}
	buf := make([]byte, PageSize)
	// Establish all four heads.
	for _, id := range files {
		for i := int64(0); i < 2; i++ {
			if err := a.ReadPage(id, i, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.DropCaches()
	a.ResetStats()
	for _, id := range files {
		if err := a.ReadPage(id, 2, buf); err != nil {
			t.Fatal(err)
		}
	}
	for di, chans := range a.DeviceChannelStats() {
		for _, c := range chans {
			if c.Seeks != 1 || c.SeqPages != 0 {
				t.Fatalf("post-drop member %d channel %d: %d seeks, %d seq; want exactly 1 seek",
					di, c.Channel, c.Seeks, c.SeqPages)
			}
		}
	}
	if s := a.Stats(); s.Seeks != 4 {
		t.Fatalf("post-drop total seeks = %d, want one per channel per member (4)", s.Seeks)
	}
}

// TestArrayCacheSplit checks the cache capacity is divided across members:
// one member's cache holds at most its share of the array total.
func TestArrayCacheSplit(t *testing.T) {
	a := NewDeviceArray(DefaultCostModel(), 64, 2, 1, RoundRobin())
	f := a.CreateFile("big") // member 0
	for p := 0; p < 40; p++ {
		if _, err := a.AppendPage(f, page(byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, PageSize)
	for i := int64(0); i < 40; i++ {
		if err := a.ReadPage(f, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	member := a.Members()[a.MemberOf(f)]
	if got := member.CachedPages(); got == 0 || got > 32 {
		t.Fatalf("member cached %d pages, want (0, 32] — half the array's 64", got)
	}
}
