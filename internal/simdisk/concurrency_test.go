package simdisk

import (
	"sync"
	"testing"
)

// TestConcurrentAccess hammers a device from many goroutines; run with
// -race to verify the locking discipline. Engines are single-threaded like
// the paper's, but the device promises thread safety.
func TestConcurrentAccess(t *testing.T) {
	d := NewDefaultDevice(32)
	f := d.CreateFile("shared")
	for i := 0; i < 64; i++ {
		if _, err := d.AppendPage(f, page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				idx := int64((g*31 + i) % 64)
				switch i % 5 {
				case 0:
					if err := d.ReadPage(f, idx, buf); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := d.WritePage(f, idx, page(byte(i))); err != nil {
						t.Error(err)
						return
					}
				case 2:
					d.Clock()
					d.Stats()
				case 3:
					d.CachedPages()
					d.TotalPages()
				case 4:
					if i%50 == 4 {
						d.DropCaches()
					}
				}
			}
		}()
	}
	wg.Wait()
	st := d.Stats()
	if st.PageReads+st.CacheHits == 0 || st.PageWrites == 0 {
		t.Fatalf("no activity recorded: %+v", st)
	}
}

// TestConcurrentFileCreation checks file-id allocation under contention.
func TestConcurrentFileCreation(t *testing.T) {
	d := NewDefaultDevice(0)
	var wg sync.WaitGroup
	ids := make(chan FileID, 100)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ids <- d.CreateFile("f")
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[FileID]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate file id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 100 {
		t.Fatalf("%d unique ids", len(seen))
	}
}
