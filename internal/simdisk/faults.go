package simdisk

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Fault taxonomy. Every injected read failure the device produces wraps one
// of these sentinels, so the layers above can decide policy with errors.Is
// alone: transient faults are worth retrying (a re-read may succeed),
// permanent faults are not (the page is gone until an operator intervenes).
// Both compose with the cancellation taxonomy — a retry loop aborted by its
// context returns an error matching ErrCanceled and the fault it was
// retrying.
var (
	// ErrTransient marks a fault that may clear on re-read: a timeout, a
	// recoverable ECC hiccup, a storm-mode probabilistic failure.
	ErrTransient = errors.New("simdisk: transient read fault")
	// ErrPermanent marks an unrecoverable fault: the page is bad and every
	// future read fails the same way. Callers must not retry.
	ErrPermanent = errors.New("simdisk: permanent read fault")
)

// FaultKind classifies an injected fault.
type FaultKind int

const (
	// FaultTransient faults clear on retry (subject to the pattern's Count).
	FaultTransient FaultKind = iota
	// FaultPermanent faults are sticky: once a page has failed permanently it
	// fails on every subsequent read.
	FaultPermanent
	// FaultSpike is a latency-spike ("limping head") fault: the read succeeds
	// but stalls for the plan's SpikeLatency in wall-clock emulation. Spikes
	// never advance the simulated clock and are never charged to an OpScope —
	// they model a drive that is slow, not a workload that is heavier.
	FaultSpike
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultSpike:
		return "spike"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// faultErr is the error shape every injected fault surfaces: it matches the
// kind's sentinel via Is and unwraps to the injector's custom cause (if one
// was given), mirroring cancelErr's idiom so errors.Is works on both the
// taxonomy sentinel and the original error.
type faultErr struct {
	kind  FaultKind
	file  FileID
	page  int64
	cause error
}

func (e *faultErr) Error() string {
	msg := fmt.Sprintf("simdisk: %s read fault: file %d page %d", e.kind, e.file, e.page)
	if e.cause != nil {
		msg += ": " + e.cause.Error()
	}
	return msg
}

func (e *faultErr) Is(target error) bool {
	if e.kind == FaultPermanent {
		return target == ErrPermanent
	}
	return target == ErrTransient
}

func (e *faultErr) Unwrap() error { return e.cause }

// PageFault is one explicit entry of a FaultPlan: fault reads of a page (or
// any page of a file) a bounded or unbounded number of times.
type PageFault struct {
	File FileID
	// Page selects one page, or every page of File when negative.
	Page int64
	Kind FaultKind
	// Count bounds how many reads this entry faults; 0 means every read
	// forever. Permanent entries behave as forever regardless of Count.
	Count int
	// Err optionally carries a custom cause the surfaced fault unwraps to.
	Err error
}

// FaultPlan is a seeded, deterministic description of how a device
// misbehaves. Explicit Pages patterns are checked first; then sticky
// permanent pages; then the probabilistic rates, evaluated from a hash of
// (Seed, file, page, per-page read ordinal) so the fault sequence is a pure
// function of the seed and each page's read history — identical across runs
// regardless of goroutine interleaving. The zero FaultPlan injects nothing;
// install it to clear a previous plan.
type FaultPlan struct {
	Seed int64

	// TransientRate is the probability in [0, 1] that a read returns a
	// transient fault. PermanentRate is the probability that a read discovers
	// the page has gone permanently bad (the page then fails forever).
	// SpikeRate is the probability that a read stalls for SpikeLatency.
	TransientRate float64
	PermanentRate float64
	SpikeRate     float64
	SpikeLatency  time.Duration

	// Pages lists explicit per-file/page fault patterns, checked before any
	// probabilistic evaluation.
	Pages []PageFault

	// Storm mode: when StormEvery > 0, reads [k*StormEvery, k*StormEvery+
	// StormLength) of the device's read sequence (for every k >= 0) fall in
	// a storm window during which the probabilistic rates are multiplied by
	// StormFactor (default 10, capped at rate 1). Storm phase follows the
	// device's global read order, so under concurrency the window's position
	// depends on interleaving even though each page's fault decisions stay
	// seed-deterministic.
	StormEvery  int
	StormLength int
	StormFactor float64
}

// active reports whether the plan can ever inject anything.
func (p *FaultPlan) active() bool {
	return p.TransientRate > 0 || p.PermanentRate > 0 || p.SpikeRate > 0 || len(p.Pages) > 0
}

// faultState is the device-side evaluation state of a FaultPlan, guarded by
// Device.faultMu.
type faultState struct {
	plan FaultPlan
	// patLeft tracks the remaining Count of each Pages entry (-1 = forever).
	patLeft []int
	// occ counts platter-path reads per page: the ordinal hashed into every
	// probabilistic decision, making the per-page fault sequence replayable.
	occ map[pageKey]uint64
	// perm pins pages the probabilistic PermanentRate has condemned, so they
	// fail on every later read like an explicit permanent pattern.
	perm map[pageKey]bool
	// reads is the global read counter driving the storm window.
	reads uint64
}

// splitmix64 is the avalanche mixer the probabilistic decisions hash with.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultRoll derives a uniform [0, 1) variate for one decision (salt) on one
// read occurrence of one page, as a pure function of the plan seed.
func faultRoll(seed int64, key pageKey, occ uint64, salt uint64) float64 {
	h := splitmix64(uint64(seed) ^ salt)
	h = splitmix64(h ^ uint64(key.file)<<32 ^ uint64(key.page))
	h = splitmix64(h ^ occ)
	return float64(h>>11) / float64(1<<53)
}

const (
	saltTransient = 0x7472616e7369656e // "transien"
	saltPermanent = 0x7065726d616e656e // "permanen"
	saltSpike     = 0x7370696b65000000 // "spike"
)

// SetFaultPlan installs (or, with a zero plan, clears) the device's fault
// plan. Installing a plan resets all evaluation state — page read ordinals,
// sticky permanent pages, pattern budgets, the storm counter — so the same
// plan replays the same fault sequence. One-shot InjectReadFault entries are
// independent of the plan and survive it.
func (d *Device) SetFaultPlan(plan FaultPlan) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	hadPlan := d.faults != nil
	if !plan.active() {
		d.faults = nil
		if hadPlan {
			d.faultsArmed.Add(-1)
		}
		return
	}
	st := &faultState{
		plan:    plan,
		patLeft: make([]int, len(plan.Pages)),
		occ:     make(map[pageKey]uint64),
		perm:    make(map[pageKey]bool),
	}
	for i, pf := range plan.Pages {
		if pf.Count <= 0 || pf.Kind == FaultPermanent {
			st.patLeft[i] = -1
		} else {
			st.patLeft[i] = pf.Count
		}
	}
	if st.plan.StormFactor <= 0 {
		st.plan.StormFactor = 10
	}
	d.faults = st
	if !hadPlan {
		d.faultsArmed.Add(1)
	}
}

// FaultPlanActive reports whether a fault plan is currently installed.
func (d *Device) FaultPlanActive() bool {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	return d.faults != nil
}

// stormBoost returns the rate multiplier for read position pos (0-based
// device read order): storm windows cover [k*StormEvery, k*StormEvery+
// StormLength) for every k >= 0.
func (st *faultState) stormBoost(pos uint64) float64 {
	p := &st.plan
	if p.StormEvery <= 0 || p.StormLength <= 0 {
		return 1
	}
	if pos%uint64(p.StormEvery) < uint64(p.StormLength) {
		return p.StormFactor
	}
	return 1
}

// evalFault decides the fate of one platter-path read of key: a latency
// spike to add to the read's wall-clock emulation (never to the simulated
// clock), an injected error, or neither. Called from readPage's fault hook
// under faultMu, before any cache touch or platter charge — a faulted read
// costs nothing, which is what lets the retry layer promise that retries
// never extend simulated charges beyond I/O actually performed.
func (d *Device) evalFaultLocked(key pageKey) (spike time.Duration, err error) {
	// One-shot injected faults (test compatibility) take precedence; they
	// are classified transient and unwrap to the injector's error.
	if len(d.readFaults) > 0 {
		if cause, ok := d.readFaults[key]; ok {
			delete(d.readFaults, key)
			d.faultsArmed.Add(-1)
			d.transientFaults.Add(1)
			return 0, &faultErr{kind: FaultTransient, file: key.file, page: key.page, cause: cause}
		}
	}
	st := d.faults
	if st == nil {
		return 0, nil
	}
	ordinal := st.occ[key]
	st.occ[key] = ordinal + 1
	pos := st.reads
	st.reads++

	// Explicit patterns first.
	for i := range st.plan.Pages {
		pf := &st.plan.Pages[i]
		if pf.File != key.file || (pf.Page >= 0 && pf.Page != key.page) {
			continue
		}
		if st.patLeft[i] == 0 {
			continue
		}
		if st.patLeft[i] > 0 {
			st.patLeft[i]--
		}
		switch pf.Kind {
		case FaultSpike:
			d.latencySpikes.Add(1)
			return st.plan.SpikeLatency, nil
		case FaultPermanent:
			d.permanentFaults.Add(1)
			return 0, &faultErr{kind: FaultPermanent, file: key.file, page: key.page, cause: pf.Err}
		default:
			d.transientFaults.Add(1)
			return 0, &faultErr{kind: FaultTransient, file: key.file, page: key.page, cause: pf.Err}
		}
	}

	// Sticky probabilistic permanents.
	if st.perm[key] {
		d.permanentFaults.Add(1)
		return 0, &faultErr{kind: FaultPermanent, file: key.file, page: key.page}
	}

	boost := st.stormBoost(pos)
	if r := st.plan.PermanentRate * boost; r > 0 && faultRoll(st.plan.Seed, key, ordinal, saltPermanent) < math.Min(r, 1) {
		st.perm[key] = true
		d.permanentFaults.Add(1)
		return 0, &faultErr{kind: FaultPermanent, file: key.file, page: key.page}
	}
	if r := st.plan.TransientRate * boost; r > 0 && faultRoll(st.plan.Seed, key, ordinal, saltTransient) < math.Min(r, 1) {
		d.transientFaults.Add(1)
		return 0, &faultErr{kind: FaultTransient, file: key.file, page: key.page}
	}
	if r := st.plan.SpikeRate * boost; r > 0 && faultRoll(st.plan.Seed, key, ordinal, saltSpike) < math.Min(r, 1) {
		d.latencySpikes.Add(1)
		return st.plan.SpikeLatency, nil
	}
	return 0, nil
}

// SetFaultPlan fans the plan out to every member with a per-member seed
// offset, decorrelating the members' fault sequences (their local page
// spaces overlap, so a shared seed would fault the same (file, page) keys
// everywhere in lockstep).
func (a *DeviceArray) SetFaultPlan(plan FaultPlan) {
	for i, m := range a.members {
		p := plan
		if p.active() {
			p.Seed = plan.Seed + int64(i)*0x9e37
		}
		m.SetFaultPlan(p)
	}
}

// FaultPlanActive reports whether any member has a plan installed.
func (a *DeviceArray) FaultPlanActive() bool {
	for _, m := range a.members {
		if m.FaultPlanActive() {
			return true
		}
	}
	return false
}

// InjectReadFault arms a one-shot fault on one member's (file, page); id is
// array-global. For a page-striped file the global page index routes to the
// chunk-mapped member's backing file.
func (a *DeviceArray) InjectReadFault(id FileID, idx int64, err error) {
	if f, ok := a.striped(id); ok {
		m, lp := a.stripeLoc(idx)
		a.members[m].InjectReadFault(f.locals[m], lp, err)
		return
	}
	dev, local := a.decode(id)
	dev.InjectReadFault(local, idx, err)
}
