package simdisk

import (
	"context"
	"testing"
	"time"
)

// qosTestDevice builds an uncached C-channel device so every read is a
// platter miss with deterministic cost.
func qosTestDevice(t *testing.T, channels int) *Device {
	t.Helper()
	return NewDeviceChannels(ReducedScaleCostModel(), 0, channels)
}

// fillFile creates a file of n pages and returns its id. The writes are
// unscoped (background setup — nothing to attribute).
func fillFile(t *testing.T, d *Device, name string, n int64) FileID {
	t.Helper()
	id := d.CreateFile(name)
	page := make([]byte, PageSize)
	for i := int64(0); i < n; i++ {
		if _, err := d.AppendPage(id, page); err != nil {
			t.Fatalf("AppendPage: %v", err)
		}
	}
	return id
}

// totalBusy sums platter busy time across all channels — the conservation
// right-hand side: every scoped charge must land here exactly once.
func totalBusy(d *Device) time.Duration {
	var sum int64
	for i := range d.channels {
		sum += d.channels[i].busy.Load()
	}
	return time.Duration(sum)
}

// TestQueueingDelayCharged pins the arrival-gated model on one channel: a
// scope that returns to a channel another scope has pushed ahead is charged
// exactly the time the head was busy with the other scope's work.
func TestQueueingDelayCharged(t *testing.T) {
	d := qosTestDevice(t, 1)
	fa := fillFile(t, d, "a", 64)
	fb := fillFile(t, d, "b", 2)
	d.ResetClock()
	d.ResetStats()

	ctxA, sa := WithOpScope(context.Background(), PriForeground)
	ctxB, sb := WithOpScope(context.Background(), PriForeground)
	buf := make([]byte, PageSize)

	// B's first read positions its timeline at the channel frontier: no delay.
	if err := d.ReadPageCtx(ctxB, fb, 0, buf); err != nil {
		t.Fatal(err)
	}
	if got := sb.Queued(); got != 0 {
		t.Fatalf("first read queued %v, want 0", got)
	}

	// A monopolizes the head for a long sequential run.
	if _, err := d.ReadRunCtx(ctxA, fa, 0, 64); err != nil {
		t.Fatal(err)
	}
	if got := sa.Queued(); got != 0 {
		t.Fatalf("A (first on channel since B left) queued %v, want 0", got)
	}

	// B returns: it arrives where its last op completed, finds the head free
	// only after A's run, and is charged exactly A's service time as delay.
	if err := d.ReadPageCtx(ctxB, fb, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got, want := sb.Queued(), sa.Charged(); got != want {
		t.Fatalf("B queued %v, want exactly A's charge %v", got, want)
	}

	// Conservation: scoped charges sum to total platter busy time; queueing
	// delay is attribution only, never extra busy time.
	if got, want := sa.Charged()+sb.Charged(), totalBusy(d); got != want {
		t.Fatalf("charges %v != busy %v", got, want)
	}
	st := d.Stats()
	if st.QueuedDelay != sb.Queued() {
		t.Fatalf("Stats.QueuedDelay %v, want %v", st.QueuedDelay, sb.Queued())
	}
	// Total = charged + queued for scopes that never hit cache.
	if got, want := sb.Total(), sb.Charged()+sb.Queued(); got != want {
		t.Fatalf("B total %v, want %v", got, want)
	}
}

// TestQueueingDelayIndependentChannels pins channel independence: work on
// one channel never delays a scope whose files live on another.
func TestQueueingDelayIndependentChannels(t *testing.T) {
	d := qosTestDevice(t, 4)
	// Find two files on different channels.
	fa := fillFile(t, d, "a", 64)
	var fb FileID
	for i := 0; i < 64; i++ {
		id := fillFile(t, d, "b", 2)
		if d.channelOf(id) != d.channelOf(fa) {
			fb = id
			break
		}
	}
	if fb == InvalidFile {
		t.Fatal("could not find files on distinct channels")
	}
	d.ResetClock()
	d.ResetStats()

	ctxA, sa := WithOpScope(context.Background(), PriForeground)
	ctxB, sb := WithOpScope(context.Background(), PriForeground)
	buf := make([]byte, PageSize)

	if err := d.ReadPageCtx(ctxB, fb, 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadRunCtx(ctxA, fa, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPageCtx(ctxB, fb, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got := sb.Queued(); got != 0 {
		t.Fatalf("B queued %v on an independent channel, want 0", got)
	}
	if got := sa.Queued(); got != 0 {
		t.Fatalf("A queued %v, want 0", got)
	}
	if got, want := sa.Charged()+sb.Charged(), totalBusy(d); got != want {
		t.Fatalf("charges %v != busy %v", got, want)
	}
}

// TestUrgentJumpsQueue pins the PriUrgent queue jump: an urgent scope in the
// same contended position as TestQueueingDelayCharged's B is charged zero
// delay.
func TestUrgentJumpsQueue(t *testing.T) {
	d := qosTestDevice(t, 1)
	fa := fillFile(t, d, "a", 64)
	fb := fillFile(t, d, "b", 2)
	d.ResetClock()
	d.ResetStats()

	ctxA, sa := WithOpScope(context.Background(), PriForeground)
	ctxB, sb := WithOpScope(context.Background(), PriUrgent)
	buf := make([]byte, PageSize)

	if err := d.ReadPageCtx(ctxB, fb, 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadRunCtx(ctxA, fa, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPageCtx(ctxB, fb, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got := sb.Queued(); got != 0 {
		t.Fatalf("urgent scope queued %v, want 0", got)
	}
	if sa.Charged() == 0 || sb.Charged() == 0 {
		t.Fatal("both scopes should have platter charges")
	}
	// Service time is still real: conservation holds with the jump.
	if got, want := sa.Charged()+sb.Charged(), totalBusy(d); got != want {
		t.Fatalf("charges %v != busy %v", got, want)
	}
}

// TestSerialScopeMatchesClock pins the C=1 D=1 compatibility guarantee: a
// single serial scope's Total is bit-for-bit the device clock delta — the
// original single-head model.
func TestSerialScopeMatchesClock(t *testing.T) {
	d := NewDeviceChannels(ReducedScaleCostModel(), 128, 1)
	fa := fillFile(t, d, "a", 32)
	d.DropCaches()
	d.ResetClock()

	ctx, s := WithOpScope(context.Background(), PriForeground)
	buf := make([]byte, PageSize)
	before := d.Clock()
	if _, err := d.ReadRunCtx(ctx, fa, 0, 32); err != nil {
		t.Fatal(err)
	}
	// Re-read one page: now a cache hit, attributed as shared time.
	if err := d.ReadPageCtx(ctx, fa, 5, buf); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Total(), d.Clock()-before; got != want {
		t.Fatalf("serial scope total %v, want clock delta %v", got, want)
	}
	if s.Shared() != d.cost.CacheHit {
		t.Fatalf("shared %v, want one cache hit %v", s.Shared(), d.cost.CacheHit)
	}
	if s.Queued() != 0 {
		t.Fatalf("serial scope queued %v, want 0", s.Queued())
	}
}

// TestMaintenanceThrottleGate pins the task-boundary budget wait
// deterministically by driving the in-flight and busy counters directly:
// over budget with foreground in flight blocks (and counts the wait once);
// within budget, or with no budget set, proceeds. A maintenance operation
// itself (gateOp) never waits — the budget is honored between tasks, not
// mid-operation under engine locks.
func TestMaintenanceThrottleGate(t *testing.T) {
	d := qosTestDevice(t, 1)
	sm := NewOpScope(PriMaintenance)

	// No budget set: never throttles.
	d.fgInFlight.Store(1)
	d.maintBusy.Store(1e9)
	d.fgBusy.Store(1)
	if err := d.AwaitMaintenanceTurn(context.Background()); err != nil {
		t.Fatalf("await without budget: %v", err)
	}
	if got := d.throttledOps.Load(); got != 0 {
		t.Fatalf("throttledOps %d, want 0", got)
	}

	// Budget set, maintenance over its share, foreground in flight: the wait
	// blocks until the context dies, and counts as throttled once — while a
	// maintenance *operation* still passes the per-op gate untouched.
	d.SetMaintenanceBudget(0.2)
	if err := d.gateOp(context.Background(), sm); err != nil {
		t.Fatalf("maintenance op gated mid-flight: %v", err)
	}
	d.ungateOp(sm)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := d.AwaitMaintenanceTurn(ctx); err == nil {
		t.Fatal("await over budget should block until cancellation")
	}
	if got := d.throttledOps.Load(); got != 1 {
		t.Fatalf("throttledOps %d, want 1", got)
	}

	// Within budget: proceeds despite foreground in flight.
	d.maintBusy.Store(1)
	d.fgBusy.Store(1e9)
	if err := d.AwaitMaintenanceTurn(context.Background()); err != nil {
		t.Fatalf("await within budget: %v", err)
	}

	// Foreground idle: proceeds regardless of share.
	d.fgInFlight.Store(0)
	d.maintBusy.Store(1e9)
	d.fgBusy.Store(1)
	if err := d.AwaitMaintenanceTurn(context.Background()); err != nil {
		t.Fatalf("await with idle foreground: %v", err)
	}
}

// TestForegroundGateCounts pins that scoped foreground operations register
// in flight for exactly the duration of the op.
func TestForegroundGateCounts(t *testing.T) {
	d := qosTestDevice(t, 1)
	sf := NewOpScope(PriForeground)
	if err := d.gateOp(context.Background(), sf); err != nil {
		t.Fatal(err)
	}
	if got := d.fgInFlight.Load(); got != 1 {
		t.Fatalf("fgInFlight %d, want 1", got)
	}
	d.ungateOp(sf)
	if got := d.fgInFlight.Load(); got != 0 {
		t.Fatalf("fgInFlight %d, want 0", got)
	}
	// Unscoped and maintenance ops never count as foreground in flight.
	if err := d.gateOp(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d.ungateOp(nil)
	sm := NewOpScope(PriMaintenance)
	if err := d.gateOp(context.Background(), sm); err != nil {
		t.Fatal(err)
	}
	d.ungateOp(sm)
	if got := d.fgInFlight.Load(); got != 0 {
		t.Fatalf("fgInFlight %d, want 0", got)
	}
}
