package simdisk

import (
	"context"
	"time"
)

// Storage is the device-shaped interface the storage stack (pagefile,
// rawfile, octree, the engines) works against: either a single *Device or a
// *DeviceArray striping files across several devices. Everything above this
// interface is placement-oblivious — the same engine code runs on one
// single-head SAS disk or on an array of multi-channel devices.
type Storage interface {
	// File lifecycle. CreateFileInGroup carries an affinity hint ("" when
	// the creator has none): a DeviceArray hands it to its placement policy
	// so a dataset's raw, tree and merge files can co-locate.
	CreateFile(name string) FileID
	CreateFileInGroup(name, group string) FileID
	DeleteFile(id FileID) error
	FileName(id FileID) (string, error)
	NumPages(id FileID) (int64, error)
	TotalPages() int64

	// Page I/O, with and without cancellation. The Ctx variants also carry
	// QoS: the platter charge is attributed to the context's OpScope (exact
	// per-query accounting on any topology), and foreground-scoped
	// operations register in flight for the maintenance throttle.
	ReadPage(id FileID, idx int64, buf []byte) error
	ReadPageCtx(ctx context.Context, id FileID, idx int64, buf []byte) error
	WritePage(id FileID, idx int64, data []byte) error
	WritePageCtx(ctx context.Context, id FileID, idx int64, data []byte) error
	AppendPage(id FileID, data []byte) (int64, error)
	AppendPageCtx(ctx context.Context, id FileID, data []byte) (int64, error)
	ReadRun(id FileID, start, n int64) ([]byte, error)
	ReadRunCtx(ctx context.Context, id FileID, start, n int64) ([]byte, error)

	// Simulated time.
	Clock() time.Duration
	ResetClock()
	AdvanceClock(dt time.Duration)
	SetRealTimeScale(scale float64)
	RealTimeScale() float64

	// Counters and cache control.
	Stats() Stats
	ResetStats()
	DropCaches()
	CachedPages() int
	SetCacheCapacity(pages int)

	// Single-flight run coalescing (scan sharing's device layer): with
	// sharing on, concurrent ReadRun calls with overlapping page ranges on
	// one file coalesce into one charged read whose buffer is fanned out
	// (Stats.CoalescedReads / CoalescedPages). Default off — every read
	// independent, the original cost model bit for bit.
	SetShareReads(share bool)
	ShareReads() bool

	// Background I/O budget (QoS): the maximum fraction of platter busy
	// time PriMaintenance operations may consume while foreground operations
	// are in flight. 0 (the default) disables throttling. Wall-clock only —
	// the simulated clock and every result are identical either way.
	// Maintenance schedulers honor the budget by calling
	// AwaitMaintenanceTurn at task boundaries, before acquiring engine
	// locks; operations themselves are never paused mid-flight.
	SetMaintenanceBudget(frac float64)
	MaintenanceBudget() float64
	AwaitMaintenanceTurn(ctx context.Context) error

	// Fault injection and retry (robustness harness, see faults.go /
	// retry.go): SetFaultPlan installs a seeded, deterministic fault plan
	// (a DeviceArray decorrelates members with per-member seed offsets);
	// SetRetryPolicy bounds the page-read retry loop that absorbs transient
	// faults, wall-clock only.
	SetFaultPlan(plan FaultPlan)
	FaultPlanActive() bool
	SetRetryPolicy(p RetryPolicy)
	RetryPolicy() RetryPolicy
	InjectReadFault(id FileID, idx int64, err error)

	// Close marks the storage closed: subsequent file operations fail with
	// ErrDeviceClosed, and the buffer cache is released. The owner (the
	// Explorer) drains background layout maintenance before closing, so a
	// closed device never has writers in flight.
	Close() error

	// Topology introspection, for serving-layer reports.
	NumDevices() int
	NumChannels() int
	PlacementName() string
	DeviceStats() []Stats
	DeviceChannelStats() [][]ChannelStats
}

// NewStorage builds the storage a topology describes: a (possibly
// multi-channel) single Device when devices <= 1, otherwise a DeviceArray
// of devices members with channels channels each under the given placement
// policy (nil defaults to GroupAffinity). This is the one place the
// topology defaulting lives; the Explorer and the bench harness both build
// through it.
func NewStorage(cost CostModel, cachePages, devices, channels int, policy PlacementPolicy) Storage {
	if devices <= 1 {
		return NewDeviceChannels(cost, cachePages, channels)
	}
	return NewDeviceArray(cost, cachePages, devices, channels, policy)
}

// Clocker is the minimal clock-reading capability WithClockLimit needs;
// both *Device and *DeviceArray provide it.
type Clocker interface {
	Clock() time.Duration
}

var (
	_ Storage = (*Device)(nil)
	_ Storage = (*DeviceArray)(nil)
)
