package odyssey

// Cross-module integration tests: full workloads through the public API and
// the harness, comparing every engine against the naive-scan oracle and
// exercising merge-file eviction, both cost models, and multi-combination
// exploration end to end.

import (
	"testing"

	"spaceodyssey/internal/bench"
	"spaceodyssey/internal/workload"
)

// TestIntegrationAllEnginesAgreeOnSkewedWorkload is the heavyweight
// equivalence test: a merging-heavy workload over 6 datasets, every engine,
// exact result equality via the harness oracle.
func TestIntegrationAllEnginesAgreeOnSkewedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	cfg := bench.DefaultConfig()
	cfg.Datasets = 6
	cfg.ObjectsPerDataset = 8000
	cfg.GridCells = 5
	env := bench.NewEnv(cfg)
	spec, err := bench.FigureByID("fig4a")
	if err != nil {
		t.Fatal(err)
	}
	w, err := bench.WorkloadForSpec(env, spec,
		bench.WorkloadConfig{Queries: 80, QueryVolumeFrac: 1e-4, Seed: 21}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []bench.EngineKind{
		bench.KindOdyssey, bench.KindOdysseyNoMerge, bench.KindFLATAin1,
		bench.KindFLAT1fE, bench.KindRTreeAin1, bench.KindRTree1fE,
		bench.KindGrid1fE, bench.KindGridAin1,
	} {
		if err := env.VerifyAgainstOracle(kind, w); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestIntegrationEvictionUnderPressure runs a long exploration with a tiny
// merge budget through the public API and checks correctness plus budget
// adherence throughout.
func TestIntegrationEvictionUnderPressure(t *testing.T) {
	ex, err := NewExplorer(Options{MergeSpaceBudgetPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 31, NumObjects: 5000, Clusters: 8}, 6)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 32, NumQueries: 150, NumDatasets: 6, DatasetsPerQuery: 4,
		QueryVolumeFrac: 1e-4, RangeDist: RangeClustered, CombDist: CombZipf,
		ClusterCenters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		got, err := ex.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, ds := range q.Datasets {
			for _, o := range data[ds] {
				if o.Intersects(q.Range) {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: %d objects, oracle %d", q.ID, len(got), want)
		}
		if pages := ex.MergeSpacePages(); pages > 64 {
			t.Fatalf("merge space %d exceeds budget after query %d", pages, q.ID)
		}
	}
	if ex.Metrics().MergeEvictions == 0 {
		t.Fatal("tiny budget triggered no evictions")
	}
}

// TestIntegrationSSDCostModel runs the engine under the SSD model; results
// must be identical, only cheaper.
func TestIntegrationSSDCostModel(t *testing.T) {
	run := func(cost CostModel) (int, int64) {
		ex, err := NewExplorer(Options{Cost: cost, DropCachesPerQuery: true})
		if err != nil {
			t.Fatal(err)
		}
		data := GenerateDatasets(DataConfig{Seed: 41, NumObjects: 4000}, 3)
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				t.Fatal(err)
			}
		}
		total := 0
		for i := 0; i < 10; i++ {
			objs, err := ex.Query(Cube(V(0.4, 0.4, 0.4), 0.06), []DatasetID{0, 1, 2})
			if err != nil {
				t.Fatal(err)
			}
			total += len(objs)
		}
		return total, int64(ex.Clock())
	}
	sasObjs, sasTime := run(DefaultCostModel())
	ssdObjs, ssdTime := run(SSDCostModel())
	if sasObjs != ssdObjs {
		t.Fatalf("results differ across cost models: %d vs %d", sasObjs, ssdObjs)
	}
	if ssdTime >= sasTime {
		t.Fatalf("SSD (%d) not faster than SAS (%d)", ssdTime, sasTime)
	}
}

// TestIntegrationDeterminism replays the same workload twice and requires
// bit-identical simulated timings (the whole stack is deterministic).
func TestIntegrationDeterminism(t *testing.T) {
	run := func() []int64 {
		cfg := bench.DefaultConfig()
		cfg.Datasets = 4
		cfg.ObjectsPerDataset = 3000
		cfg.GridCells = 4
		env := bench.NewEnv(cfg)
		w, err := workload.Generate(workload.Config{
			Seed: 51, NumQueries: 40, NumDatasets: 4, DatasetsPerQuery: 3,
			QueryVolumeFrac: 1e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.Run(bench.KindOdyssey, w)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, len(res.QueryTimes))
		for i, d := range res.QueryTimes {
			out[i] = int64(d)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d timing differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestIntegrationGrowingDatasetCollection adds datasets mid-session; new
// datasets must be queryable immediately and old indexes unaffected.
func TestIntegrationGrowingDatasetCollection(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 61, NumObjects: 3000}, 4)
	for i := 0; i < 2; i++ {
		if err := ex.AddDataset(DatasetID(i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	q := Cube(V(0.5, 0.5, 0.5), 0.08)
	if _, err := ex.Query(q, []DatasetID{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Add two more after the first queries.
	for i := 2; i < 4; i++ {
		if err := ex.AddDataset(DatasetID(i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ex.Query(q, []DatasetID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 4; i++ {
		for _, o := range data[i] {
			if o.Intersects(q) {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("grown collection: %d objects, oracle %d", len(got), want)
	}
}
